"""Live operations telemetry: what the engine is doing *right now* and
how it has behaved *over time*.

The per-query collectors (:mod:`repro.obs.metrics`) and the cumulative
store (:mod:`repro.obs.stats_store`) answer "what did that statement
do?"; this module answers the two operational questions they cannot:

* **Right now** — :class:`ActivityRegistry`, a ``pg_stat_activity``-style
  table of in-flight queries.  Every statement the engine runs registers
  a :class:`QueryActivity` record whose *current phase* is fed from the
  existing lifecycle span names (via :func:`repro.obs.trace.feed_phases`
  — per phase/slice, never per row) and whose rows/partitions-so-far are
  *pulled* from the query's own :class:`~repro.obs.metrics
  .MetricsCollector` at read time, so the running query pays nothing for
  being observable.  Records carry the query's
  :class:`~repro.resilience.CancelToken` when it has one, so
  ``cancel(query_id)`` terminates exactly that query.
* **Over time** — fixed-log-bucket :class:`Histogram` families (query
  latency, admission queue wait, partition scanned-vs-eligible ratio)
  and bounded ring-buffer :class:`GaugeSeries` (queue depth, in-flight,
  pool busy fraction, cache hit rate, ...) sampled by a background
  ticker thread.  All state is O(buckets + ring capacity): the hub's
  memory never grows with query count.

:class:`LiveTelemetry` ties both together, owns the
:class:`~repro.obs.slowlog.SlowQueryLog`, and exports everything as the
``repro_live_*`` Prometheus families and the ``/activity`` JSON body.
One hub lives on each :class:`~repro.engine.Database` (``db.live``).
"""

from __future__ import annotations

import datetime
import itertools
import json
import math
import threading
import time
from collections import deque
from typing import Callable

from ..resilience.guardrails import CancelToken
from .prom import MetricFamily, histogram_family
from .slowlog import SlowQueryLog

__all__ = [
    "ActivityRegistry",
    "GaugeSeries",
    "Histogram",
    "LiveTelemetry",
    "QueryActivity",
    "linear_buckets",
    "log_buckets",
]

#: per-record cap on the phase log (a query visits one phase per
#: lifecycle stage plus one per slice; deep plans stay bounded)
_MAX_PHASE_LOG = 256
#: query text kept in snapshots (full text stays in the record)
_SNAPSHOT_QUERY_CHARS = 200


def log_buckets(
    start: float = 0.001, factor: float = 2.0, count: int = 20
) -> list[float]:
    """Geometric bucket upper bounds: ``start * factor**i``.

    The defaults span 1 ms .. ~524 s — wider than any simulated query —
    in 20 buckets, the classic Prometheus latency layout."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    return [start * factor**i for i in range(count)]


def linear_buckets(start: float, width: float, count: int) -> list[float]:
    """Arithmetic bucket upper bounds: ``start + width*i``."""
    if width <= 0 or count < 1:
        raise ValueError("need width > 0, count >= 1")
    return [start + width * i for i in range(count)]


class Histogram:
    """Fixed-bucket histogram with O(1) observe and bounded memory.

    ``bounds`` are ascending upper bounds; observations above the last
    bound land in an implicit overflow bucket.  Quantiles are
    nearest-rank over the bucket counts — the answer is the upper bound
    of the bucket holding the target rank (the overflow bucket answers
    with the maximum observed value), which is exactly the resolution
    Prometheus consumers get from ``histogram_quantile``.
    """

    def __init__(self, bounds: list[float]):
        if not bounds or sorted(bounds) != list(bounds):
            raise ValueError("bounds must be non-empty and ascending")
        self.bounds = tuple(float(b) for b in bounds)
        self._counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            self._counts[index] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def bucket_counts(self) -> list[int]:
        """Non-cumulative per-bucket counts (overflow bucket last)."""
        with self._lock:
            return list(self._counts)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile (see class docs); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = max(1, math.ceil(q * self.count))
            cumulative = 0
            for bound, bucket in zip(self.bounds, self._counts):
                cumulative += bucket
                if cumulative >= rank:
                    return bound
            return self.max if self.max is not None else self.bounds[-1]

    def percentiles(self) -> dict:
        return {
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
        }

    def to_dict(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            count, total = self.count, self.sum
        summary = {
            "bounds": list(self.bounds),
            "counts": counts,
            "count": count,
            "sum": total,
            "min": self.min,
            "max": self.max,
        }
        summary.update(self.percentiles())
        return summary


class GaugeSeries:
    """A bounded time series of one sampled gauge.

    Samples are ``(offset_s, value)`` pairs relative to the series'
    creation, in a ring buffer — memory is fixed whatever the uptime.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._origin = time.monotonic()
        self._samples: deque[tuple[float, float]] = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def sample(self, value: float) -> None:
        with self._lock:
            self._samples.append(
                (time.monotonic() - self._origin, float(value))
            )

    @property
    def last(self) -> float | None:
        with self._lock:
            return self._samples[-1][1] if self._samples else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def to_dict(self, limit: int | None = None) -> dict:
        with self._lock:
            samples = list(self._samples)
        if limit is not None:
            samples = samples[-limit:]
        return {
            "capacity": self.capacity,
            "samples": [
                {"offset_s": round(offset, 3), "value": value}
                for offset, value in samples
            ],
            "last": samples[-1][1] if samples else None,
        }


class QueryActivity:
    """One in-flight query's live record (a ``pg_stat_activity`` row).

    The record itself is nearly write-free while the query runs: the
    lifecycle span hook updates ``phase`` once per phase/slice, the
    executor attaches its :class:`~repro.obs.metrics.MetricsCollector`
    once, and everything else — rows produced, partitions opened,
    elapsed time — is computed from those at :meth:`snapshot` time.
    """

    __slots__ = (
        "query_id",
        "query",
        "session",
        "workers",
        "phase",
        "phase_log",
        "queued_seconds",
        "cancel_token",
        "metrics",
        "started",
        "started_at",
        "error",
        "_fingerprint",
    )

    def __init__(
        self,
        query_id: int,
        query: str,
        session: str | None = None,
        workers: int | None = None,
        cancel: CancelToken | None = None,
    ):
        self.query_id = query_id
        self.query = query
        self.session = session
        self.workers = workers
        self.phase = "submitted"
        #: (offset_s, phase) transitions, bounded; feeds slow-log timings
        self.phase_log: list[tuple[float, str]] = []
        self.queued_seconds: float | None = None
        self.cancel_token = cancel
        #: the execution's MetricsCollector once the executor starts
        self.metrics = None
        self.started = time.perf_counter()
        self.started_at = datetime.datetime.now(datetime.timezone.utc)
        self.error: str | None = None
        self._fingerprint: str | None = None

    # -- hooks (engine / executor / serving) ----------------------------------

    def enter_phase(self, name: str) -> None:
        """Fed by :func:`repro.obs.trace.feed_phases` — one call per
        lifecycle span, never per row."""
        self.phase = name
        if len(self.phase_log) < _MAX_PHASE_LOG:
            self.phase_log.append(
                (time.perf_counter() - self.started, name)
            )

    def attach_metrics(self, metrics) -> None:
        self.metrics = metrics

    def adopt_cancel(self, token: CancelToken | None) -> None:
        if token is not None:
            self.cancel_token = token

    # -- reads ----------------------------------------------------------------

    @property
    def elapsed_seconds(self) -> float:
        return time.perf_counter() - self.started

    @property
    def fingerprint(self) -> str:
        """Computed lazily (a lexer pass) so registration stays cheap."""
        if self._fingerprint is None:
            from .stats_store import fingerprint

            self._fingerprint = fingerprint(self.query)
        return self._fingerprint

    def phase_timings(self) -> list[dict]:
        """Per-phase wall times derived from the transition log (the last
        phase is open-ended and measured to now)."""
        timings: list[dict] = []
        for i, (offset, name) in enumerate(self.phase_log):
            end = (
                self.phase_log[i + 1][0]
                if i + 1 < len(self.phase_log)
                else self.elapsed_seconds
            )
            timings.append(
                {"phase": name, "seconds": round(max(0.0, end - offset), 6)}
            )
        return timings

    def snapshot(self) -> dict:
        """The ``/activity`` row: identity, phase, progress-so-far."""
        metrics = self.metrics
        rows_produced = 0
        rows_scanned = 0
        partitions_scanned = 0
        partitions_eligible = 0
        if metrics is not None:
            if metrics.nodes:
                rows_produced = metrics.nodes[0].actual_rows
            rows_scanned = metrics.total_rows_scanned
            partitions_scanned = metrics.partitions_scanned()
            for stats in metrics.table_stats().values():
                if stats.get("partitions_total"):
                    partitions_eligible += stats["partitions_total"]
        query = self.query
        if len(query) > _SNAPSHOT_QUERY_CHARS:
            query = query[: _SNAPSHOT_QUERY_CHARS - 3] + "..."
        return {
            "query_id": self.query_id,
            "session": self.session,
            "query": query,
            "fingerprint": self.fingerprint,
            "phase": self.phase,
            "elapsed_s": round(self.elapsed_seconds, 6),
            "queued_s": (
                round(self.queued_seconds, 6)
                if self.queued_seconds is not None
                else None
            ),
            "workers": self.workers,
            "rows_produced": rows_produced,
            "rows_scanned": rows_scanned,
            "partitions_scanned": partitions_scanned,
            "partitions_eligible": partitions_eligible,
            "started_at": self.started_at.isoformat(),
            "cancellable": self.cancel_token is not None,
        }

    def __repr__(self) -> str:
        return (
            f"QueryActivity(#{self.query_id}, {self.phase!r}, "
            f"{self.elapsed_seconds * 1000:.1f} ms)"
        )


class ActivityRegistry:
    """Thread-safe query_id -> :class:`QueryActivity` (in-flight only)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._entries: dict[int, QueryActivity] = {}
        self._ids = itertools.count(1)

    def register(
        self,
        query: str,
        session: str | None = None,
        workers: int | None = None,
        cancel: CancelToken | None = None,
    ) -> QueryActivity:
        activity = QueryActivity(
            next(self._ids), query, session=session, workers=workers,
            cancel=cancel,
        )
        with self._lock:
            self._entries[activity.query_id] = activity
        return activity

    def finish(self, activity: QueryActivity) -> None:
        with self._lock:
            self._entries.pop(activity.query_id, None)

    def get(self, query_id: int) -> QueryActivity | None:
        with self._lock:
            return self._entries.get(query_id)

    def cancel(self, query_id: int) -> bool:
        """Signal one in-flight query's cancel token; returns whether a
        cancellable query with that id was found.  The query raises
        :class:`~repro.errors.QueryCancelled` at its next guardrail
        checkpoint."""
        activity = self.get(query_id)
        if activity is None or activity.cancel_token is None:
            return False
        activity.cancel_token.cancel()
        return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> list[dict]:
        """All in-flight rows, oldest first (stable JSON order)."""
        with self._lock:
            entries = sorted(self._entries)
            records = [self._entries[qid] for qid in entries]
        return [record.snapshot() for record in records]

    def render(self) -> str:
        """The ``\\activity`` table."""
        rows = self.snapshot()
        if not rows:
            return "activity: no queries in flight"
        header = (
            f"{'id':>5}  {'session':<14} {'phase':<12} {'elapsed':>9}  "
            f"{'rows':>8}  {'parts k/N':>10}  query"
        )
        lines = [f"activity ({len(rows)} in flight):", header,
                 "-" * len(header)]
        for row in rows:
            parts = (
                f"{row['partitions_scanned']}/{row['partitions_eligible']}"
            )
            query = row["query"]
            if len(query) > 48:
                query = query[:45] + "..."
            lines.append(
                f"{row['query_id']:>5}  {(row['session'] or '-'):<14} "
                f"{row['phase'][:12]:<12} "
                f"{row['elapsed_s'] * 1000:>7.1f}ms  "
                f"{row['rows_produced']:>8}  {parts:>10}  {query}"
            )
        return "\n".join(lines)


class LiveTelemetry:
    """The hub: in-flight registry + time-series + slow log (see module
    docs).  One per :class:`~repro.engine.Database` (``db.live``)."""

    #: default ticker cadence
    TICK_INTERVAL_S = 0.5

    def __init__(self, slow_log: SlowQueryLog | None = None):
        self.activity = ActivityRegistry()
        #: end-to-end statement latency (queue wait included for serving
        #: queries)
        self.query_seconds = Histogram(log_buckets(0.0005, 2.0, 22))
        #: admission queue wait (serving queries only)
        self.queue_seconds = Histogram(log_buckets(0.0005, 2.0, 22))
        #: per-query partitions scanned / eligible (the paper's
        #: elimination effectiveness, as a distribution)
        self.scan_ratio = Histogram(linear_buckets(0.1, 0.1, 10))
        #: sampled gauge series, keyed by source name
        self.series: dict[str, GaugeSeries] = {}
        self._sources: dict[str, Callable[[], float | None]] = {}
        self.slow_log = slow_log if slow_log is not None else SlowQueryLog()
        self._lock = threading.Lock()
        self._ticker: threading.Thread | None = None
        self._ticker_stop = threading.Event()
        self.tick_interval_s = self.TICK_INTERVAL_S
        self.ticks = 0
        self.completed = 0
        self.failed = 0

    # -- query lifecycle -------------------------------------------------------

    def begin(
        self,
        query: str,
        session: str | None = None,
        workers: int | None = None,
        cancel: CancelToken | None = None,
    ) -> QueryActivity:
        """Register one statement; returns its live record."""
        return self.activity.register(
            query, session=session, workers=workers, cancel=cancel
        )

    def complete(
        self, activity: QueryActivity, error: BaseException | str | None = None
    ) -> dict:
        """Unregister a statement, fold its outcome into the histograms
        and (maybe) the slow log; returns the metrics-export ``live``
        section for the statement."""
        elapsed = activity.elapsed_seconds
        activity.error = (
            error
            if isinstance(error, str) or error is None
            else type(error).__name__
        )
        activity.phase = "failed" if error is not None else "done"
        self.activity.finish(activity)
        self.query_seconds.observe(elapsed)
        if activity.queued_seconds is not None:
            self.queue_seconds.observe(activity.queued_seconds)
        snapshot = activity.snapshot()
        if snapshot["partitions_eligible"]:
            self.scan_ratio.observe(
                snapshot["partitions_scanned"]
                / snapshot["partitions_eligible"]
            )
        with self._lock:
            if error is not None:
                self.failed += 1
            else:
                self.completed += 1
        if self.slow_log.enabled:
            record = dict(snapshot)
            record["elapsed_s"] = round(elapsed, 6)
            record["error"] = activity.error
            record["phase_timings"] = activity.phase_timings()
            self.slow_log.maybe_record(elapsed, record)
        return {
            "query_id": activity.query_id,
            "session": activity.session,
            "queued_seconds": snapshot["queued_s"],
            "elapsed_seconds": round(elapsed, 6),
            "phases": [name for _, name in activity.phase_log],
        }

    # -- sampled gauges --------------------------------------------------------

    def add_source(
        self,
        name: str,
        read: Callable[[], float | None],
        capacity: int = 512,
    ) -> None:
        """Register one gauge source; the ticker (and
        :meth:`sample_now`) polls it into a bounded series.  A source
        returning None is skipped for that tick (e.g. no server open)."""
        with self._lock:
            self._sources[name] = read
            self.series.setdefault(name, GaugeSeries(capacity))

    def sample_now(self) -> dict[str, float | None]:
        """Poll every source once (the ticker body; also callable
        directly for deterministic tests and scrape-time freshness)."""
        with self._lock:
            sources = list(self._sources.items())
        values: dict[str, float | None] = {}
        for name, read in sources:
            try:
                value = read()
            except Exception:  # noqa: BLE001 - a source must never kill the tick
                value = None
            values[name] = value
            if value is not None:
                self.series[name].sample(value)
        with self._lock:
            self.ticks += 1
        return values

    def start_ticker(self, interval_s: float | None = None) -> None:
        """Start (idempotently) the background sampling thread."""
        with self._lock:
            if interval_s is not None:
                self.tick_interval_s = interval_s
            if self._ticker is not None and self._ticker.is_alive():
                return
            self._ticker_stop = threading.Event()
            self._ticker = threading.Thread(
                target=self._tick_loop, name="repro-live-ticker", daemon=True
            )
            self._ticker.start()

    def stop_ticker(self) -> None:
        with self._lock:
            ticker, self._ticker = self._ticker, None
            self._ticker_stop.set()
        if ticker is not None and ticker.is_alive():
            ticker.join(timeout=2.0)

    @property
    def ticker_running(self) -> bool:
        ticker = self._ticker
        return ticker is not None and ticker.is_alive()

    def _tick_loop(self) -> None:
        stop = self._ticker_stop
        while not stop.wait(self.tick_interval_s):
            self.sample_now()

    # -- exports ---------------------------------------------------------------

    def to_dict(self) -> dict:
        """The ``db.activity()`` / ``/activity`` body plus the
        time-series state."""
        with self._lock:
            completed, failed, ticks = self.completed, self.failed, self.ticks
            series_names = sorted(self.series)
        return {
            "in_flight": self.activity.snapshot(),
            "completed": completed,
            "failed": failed,
            "ticks": ticks,
            "histograms": {
                "query_seconds": self.query_seconds.to_dict(),
                "queue_seconds": self.queue_seconds.to_dict(),
                "partition_scan_ratio": self.scan_ratio.to_dict(),
            },
            "series": {
                name: self.series[name].to_dict(limit=64)
                for name in series_names
            },
            "slow_log": self.slow_log.to_dict(),
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def prom_families(self) -> list[MetricFamily]:
        """The ``repro_live_*`` families for the consolidated exporter."""
        families = [
            MetricFamily(
                "repro_live_queries", "gauge", "Queries currently in flight"
            ).add(len(self.activity)),
            MetricFamily(
                "repro_live_queries_completed_total",
                "counter",
                "Statements completed successfully",
            ).add(self.completed),
            MetricFamily(
                "repro_live_queries_failed_total",
                "counter",
                "Statements that raised",
            ).add(self.failed),
            MetricFamily(
                "repro_live_slow_queries_total",
                "counter",
                "Statements recorded by the slow-query log",
            ).add(self.slow_log.records_written),
        ]
        for name, histogram, help_text in (
            (
                "repro_live_query_seconds",
                self.query_seconds,
                "End-to-end statement latency",
            ),
            (
                "repro_live_queue_seconds",
                self.queue_seconds,
                "Admission queue wait (serving queries)",
            ),
            (
                "repro_live_partition_scan_ratio",
                self.scan_ratio,
                "Per-query partitions scanned / eligible",
            ),
        ):
            counts = histogram.bucket_counts()
            families.append(
                histogram_family(
                    name,
                    help_text,
                    histogram.bounds,
                    counts,
                    histogram.sum,
                    histogram.count,
                )
            )
        with self._lock:
            series_names = sorted(self.series)
        sampled = MetricFamily(
            "repro_live_sample",
            "gauge",
            "Most recent value of each sampled gauge series",
        )
        for name in series_names:
            last = self.series[name].last
            if last is not None:
                sampled.add(last, series=name)
        families.append(sampled)
        return families

    def to_prometheus(self) -> str:
        from .prom import render

        return render(self.prom_families())
