"""The structured slow-query log.

Production engines keep a ``log_min_duration_statement``-style sink: any
statement slower than a threshold is appended — with enough structure to
debug it later — to a log an operator can tail, grep and ship.  This
module is that sink for the repro engine: **JSONL** (one JSON object per
line, stable key order), written only for statements at or above the
configured threshold, with size-based rotation so an unattended server
never fills a disk.

Each record carries the statement's fingerprint and (truncated) text,
wall/queue times, phase timings from the live activity record, and the
paper's partition counters (scanned vs. eligible), plus an ``error``
field for statements that failed slowly.

Disabled by default (``threshold_s=None``); enable programmatically via
:meth:`SlowQueryLog.configure` or from the CLI with
``SET slow_log SECONDS [PATH]``.
"""

from __future__ import annotations

import json
import os
import threading

__all__ = ["SlowQueryLog"]

#: default rotation point: rotate once the active file passes this size
DEFAULT_MAX_BYTES = 4 * 1024 * 1024
#: rotated generations kept (``path.1`` .. ``path.N``, newest first)
DEFAULT_BACKUPS = 3


class SlowQueryLog:
    """Threshold-gated JSONL sink with size-based rotation."""

    def __init__(
        self,
        path: str | None = None,
        threshold_s: float | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        backups: int = DEFAULT_BACKUPS,
    ):
        self._lock = threading.Lock()
        self.path = path
        self.threshold_s = threshold_s
        self.max_bytes = max_bytes
        self.backups = backups
        #: records actually written (observability for tests and \activity)
        self.records_written = 0

    @property
    def enabled(self) -> bool:
        return self.threshold_s is not None and self.path is not None

    def configure(
        self,
        threshold_s: float | None = None,
        path: str | None = None,
        max_bytes: int | None = None,
        backups: int | None = None,
    ) -> None:
        """Reconfigure in place; ``threshold_s=None`` disables the log."""
        with self._lock:
            self.threshold_s = threshold_s
            if path is not None:
                self.path = path
            if max_bytes is not None:
                self.max_bytes = max_bytes
            if backups is not None:
                self.backups = backups

    # -- recording -----------------------------------------------------------

    def maybe_record(self, elapsed_s: float, record: dict) -> bool:
        """Append ``record`` iff the log is enabled and ``elapsed_s``
        meets the threshold; returns whether a line was written.

        Never raises: a full disk or bad path must not fail the query
        that merely happened to be slow.
        """
        with self._lock:
            if (
                self.threshold_s is None
                or self.path is None
                or elapsed_s < self.threshold_s
            ):
                return False
            line = json.dumps(record, sort_keys=True, default=str)
            try:
                self._rotate_if_needed(len(line) + 1)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
            except OSError:
                return False
            self.records_written += 1
            return True

    def _rotate_if_needed(self, incoming_bytes: int) -> None:
        """Rotate ``path`` -> ``path.1`` -> ... when the active file would
        pass ``max_bytes``; the oldest generation falls off."""
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return  # no active file yet
        if size + incoming_bytes <= self.max_bytes:
            return
        for generation in range(self.backups, 0, -1):
            src = (
                self.path
                if generation == 1
                else f"{self.path}.{generation - 1}"
            )
            dst = f"{self.path}.{generation}"
            if os.path.exists(src):
                os.replace(src, dst)
        if self.backups == 0:
            os.remove(self.path)

    # -- introspection -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "enabled": self.enabled,
            "path": self.path,
            "threshold_s": self.threshold_s,
            "max_bytes": self.max_bytes,
            "backups": self.backups,
            "records_written": self.records_written,
        }

    def __repr__(self) -> str:
        state = (
            f"threshold={self.threshold_s}s path={self.path!r}"
            if self.enabled
            else "disabled"
        )
        return f"SlowQueryLog({state})"
