"""Span-based query-lifecycle tracing.

One :class:`Tracer` covers one traced query from parse to execution.  The
engine opens a span per lifecycle phase (``parse`` → ``bind`` →
``optimize`` → ``place_partition_selectors`` → ``lower`` → ``execute``),
the executor adds one child span per slice, and the optimizer pours typed
search events into the tracer's :class:`~repro.obs.opt_events
.OptimizerEventLog` — Orca's minidump idea scaled to this engine.

Tracing is **off by default and costs nothing when off**: instrumented
code paths call :func:`current` / :func:`span`, which reduce to one module
global read when no tracer is active, and no instrumentation site sits on
a per-row path (spans are per phase / per slice; optimizer events are per
group / per request).

Activation is scoped, not ambient::

    tracer = Tracer()
    with activate(tracer):
        plan = db.plan("SELECT ...")
    tracer.seconds("optimize")      # wall time of the optimize phase

The stable export is JSON lines (:meth:`Tracer.to_jsonl`): one object per
span in start order, so a trace file can be streamed, grepped and diffed.
Schema documented in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Iterator

#: the active tracer (None = tracing off); set only via :class:`activate`
_active: "Tracer | None" = None

#: per-thread phase sink (None = nobody listening); set via :class:`feed_phases`
_phase_sinks = threading.local()


def current() -> "Tracer | None":
    """The active tracer, or None when tracing is off."""
    return _active


class feed_phases:
    """Context manager feeding lifecycle span *names* to ``sink``.

    The live activity registry (:mod:`repro.obs.live`) uses this to learn
    a running query's current phase without new instrumentation sites:
    every :func:`span` call — which happens per phase / per slice, never
    per row, and fires even when tracing is off — also notifies the
    thread's installed sink.  Scoped per thread so concurrent serving
    queries each feed their own activity record; worker-thread
    :func:`worker_span` calls are deliberately not hooked (the lifecycle
    thread owns the record).  Nesting restores the previous sink.
    """

    __slots__ = ("sink", "_previous")

    def __init__(self, sink):
        self.sink = sink
        self._previous = None

    def __enter__(self):
        self._previous = getattr(_phase_sinks, "sink", None)
        _phase_sinks.sink = self.sink
        return self.sink

    def __exit__(self, *exc) -> bool:
        _phase_sinks.sink = self._previous
        return False


class activate:
    """Context manager installing ``tracer`` as the active tracer.

    ``activate(None)`` is a supported no-op, so callers can write one
    ``with`` block for both traced and untraced runs.  Nesting restores
    the previous tracer on exit.
    """

    def __init__(self, tracer: "Tracer | None"):
        self.tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> "Tracer | None":
        global _active
        self._previous = _active
        if self.tracer is not None:
            _active = self.tracer
        return self.tracer

    def __exit__(self, *exc) -> bool:
        global _active
        _active = self._previous
        return False


class _NullSpan:
    """Reusable no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """A span on the active tracer, or a no-op when tracing is off.

    This is the one call instrumented code makes; the off path is a
    module-global read plus one branch (plus one thread-local read for
    the :class:`feed_phases` hook — still per phase/slice, never per
    row).
    """
    sink = getattr(_phase_sinks, "sink", None)
    if sink is not None:
        sink(name)
    tracer = _active
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


def worker_span(parent, name: str, **attrs):
    """A span explicitly parented under ``parent`` (a :class:`Span`), for
    worker threads.

    Span nesting is tracked per thread, so a worker thread's first span
    would otherwise open at the root; the parallel scheduler instead
    passes the enclosing ``slice:N`` span so ``segment:K`` spans land
    under it.  No-op when tracing is off (``parent`` is then None, since
    :func:`span` returned the null handle)."""
    tracer = _active
    if tracer is None or parent is None:
        return _NULL_SPAN
    return tracer.span(name, _parent=parent, **attrs)


class Span:
    """One timed region of the query lifecycle.

    Times are seconds relative to the tracer's origin, so exported spans
    are small stable offsets rather than absolute clock values.
    """

    __slots__ = ("span_id", "parent_id", "name", "depth", "start_s", "end_s", "attrs")

    def __init__(
        self,
        span_id: int,
        parent_id: int | None,
        name: str,
        depth: int,
        start_s: float,
        attrs: dict[str, Any],
    ):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.depth = depth
        self.start_s = start_s
        self.end_s: float | None = None
        self.attrs = attrs

    @property
    def duration_s(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "start_ms": self.start_s * 1000.0,
            "duration_ms": self.duration_s * 1000.0,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:
        return f"Span({self.name!r}, {self.duration_s * 1000:.2f} ms)"


class _SpanHandle:
    """Context manager opening/closing one :class:`Span` on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc) -> bool:
        self._tracer._close(self._span)
        return False


class Tracer:
    """All spans (and optimizer events) of one traced query."""

    def __init__(self):
        # local import: opt_events imports this module at its top level
        from .opt_events import OptimizerEventLog

        self._clock = time.perf_counter
        self._origin = self._clock()
        #: spans in start order (the stable export order)
        self.spans: list[Span] = []
        #: span nesting is per thread — each worker thread gets its own
        #: open-span stack, so concurrent segment instances can't corrupt
        #: each other's parentage
        self._stacks = threading.local()
        #: guards span-id assignment + the spans list across threads
        self._lock = threading.Lock()
        #: typed optimizer search events (see :mod:`repro.obs.opt_events`)
        self.optimizer = OptimizerEventLog()

    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    # -- span lifecycle ----------------------------------------------------

    def span(self, name: str, _parent: Span | None = None, **attrs) -> _SpanHandle:
        """Open a span; ``_parent`` overrides the thread-local nesting
        (used by :func:`worker_span` to attach worker-thread spans under
        the slice span opened on the scheduling thread)."""
        stack = self._stack()
        parent = _parent
        if parent is None:
            parent = stack[-1] if stack else None
        start_s = self._clock() - self._origin
        with self._lock:
            opened = Span(
                len(self.spans),
                parent.span_id if parent is not None else None,
                name,
                parent.depth + 1 if parent is not None else 0,
                start_s,
                attrs,
            )
            self.spans.append(opened)
        stack.append(opened)
        return _SpanHandle(self, opened)

    def _close(self, span: Span) -> None:
        span.end_s = self._clock() - self._origin
        # Close any dangling descendants too (exception unwinding).  The
        # stack is the opening thread's own, so no lock is needed.
        stack = self._stack()
        while stack:
            top = stack.pop()
            if top.end_s is None:
                top.end_s = span.end_s
            if top is span:
                break

    # -- queries -----------------------------------------------------------

    def phase_names(self) -> list[str]:
        """Span names in start order (phases and slices interleaved)."""
        return [s.name for s in self.spans]

    def find(self, name: str) -> Span | None:
        """The first span named ``name``, or None."""
        for s in self.spans:
            if s.name == name:
                return s
        return None

    def seconds(self, name: str) -> float:
        """Total wall time across all spans named ``name``."""
        return sum(s.duration_s for s in self.spans if s.name == name)

    def children(self, parent: Span) -> Iterator[Span]:
        for s in self.spans:
            if s.parent_id == parent.span_id:
                yield s

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        """The ``trace`` section of the metrics export (schema v3)."""
        return {
            "phases": [s.name for s in self.spans if s.parent_id is None],
            "spans": [s.to_dict() for s in self.spans],
        }

    def to_jsonl(self) -> str:
        """One JSON object per span, in start order, stable key order."""
        return "\n".join(
            json.dumps(s.to_dict(), sort_keys=True, default=str)
            for s in self.spans
        )

    def render(self) -> str:
        """Indented span tree with wall times (for ``EXPLAIN (TRACE)``)."""
        lines = []
        for s in self.spans:
            attrs = "".join(
                f" {key}={value}" for key, value in sorted(s.attrs.items())
            )
            lines.append(
                f"{'  ' * s.depth}{s.name}: {s.duration_s * 1000:.2f} ms{attrs}"
            )
        return "\n".join(lines)
