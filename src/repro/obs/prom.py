"""The shared Prometheus text-exposition exporter.

Three subsystems grew hand-rolled Prometheus emitters (the query-stats
store, the statement cache, the serving tier) and the live-telemetry hub
adds a fourth; this module is the one place that knows the text format
(0.0.4) so every family renders identically: a ``# HELP``/``# TYPE``
header pair, then one sample per line with sorted, escaped labels.

Build a :class:`MetricFamily` per metric, add samples, and
:func:`render` the lot::

    family = MetricFamily("repro_cache_hits_total", "counter",
                          "Cache lookup hits")
    family.add(12, cache="partitions")
    text = render([family])

Histograms follow the Prometheus convention — cumulative ``_bucket``
samples with an ``le`` label (monotonically non-decreasing, ending in
``le="+Inf"``), plus ``_sum`` and ``_count`` — via
:func:`histogram_family`.

:func:`export_prometheus` is the consolidated scrape body: every family
the engine exports (``repro_query_*``, ``repro_cache_*``,
``repro_serving_*`` when a server runs, ``repro_live_*``) in one
deterministic document.  The CLI's ``\\stats prometheus`` and the
``/metrics`` scrape endpoint both serve exactly this.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "MetricFamily",
    "escape_help",
    "escape_label_value",
    "export_prometheus",
    "format_labels",
    "histogram_family",
    "render",
]

#: the metric kinds the text format knows
KINDS = ("counter", "gauge", "histogram", "summary", "untyped")


def escape_label_value(value) -> str:
    """Escape one label value (backslash, double quote, newline)."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def escape_help(text: str) -> str:
    """Escape a HELP line (backslash and newline only, per the spec)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_labels(labels: dict | None) -> str:
    """``{k="v",...}`` with keys sorted for deterministic output, or the
    empty string for an unlabelled sample."""
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(value)}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def format_value(value) -> str:
    """A sample value in the exposition format (ints stay ints, floats
    render via repr, infinities spell +Inf/-Inf)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


class MetricFamily:
    """One named metric with its samples (see module docs)."""

    __slots__ = ("name", "kind", "help", "samples")

    def __init__(self, name: str, kind: str, help_text: str):
        if kind not in KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help_text
        #: (suffix, labels dict | None, value), in insertion order
        self.samples: list[tuple[str, dict | None, object]] = []

    def add(self, value, **labels) -> "MetricFamily":
        """Append one sample; returns self for chaining."""
        self.samples.append(("", labels or None, value))
        return self

    def add_sample(
        self, value, labels: dict | None = None, suffix: str = ""
    ) -> "MetricFamily":
        """Append one sample with an explicit label dict and an optional
        metric-name suffix (``_bucket``/``_sum``/``_count``)."""
        self.samples.append((suffix, dict(labels) if labels else None, value))
        return self

    def render_lines(self) -> list[str]:
        lines = [
            f"# HELP {self.name} {escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for suffix, labels, value in self.samples:
            lines.append(
                f"{self.name}{suffix}{format_labels(labels)} "
                f"{format_value(value)}"
            )
        return lines


def histogram_family(
    name: str,
    help_text: str,
    bounds: Sequence[float],
    bucket_counts: Sequence[int],
    total_sum: float,
    count: int,
    labels: dict | None = None,
) -> MetricFamily:
    """A Prometheus histogram family from fixed-bucket counters.

    ``bucket_counts`` holds one *non-cumulative* count per bound plus a
    final overflow bucket (``len(bounds) + 1`` entries); the rendered
    ``_bucket`` samples are cumulative, as the format requires.
    """
    if len(bucket_counts) != len(bounds) + 1:
        raise ValueError(
            f"need {len(bounds) + 1} bucket counts, got {len(bucket_counts)}"
        )
    family = MetricFamily(name, "histogram", help_text)
    cumulative = 0
    for bound, bucket in zip(bounds, bucket_counts):
        cumulative += bucket
        le = dict(labels) if labels else {}
        le["le"] = format_value(float(bound))
        family.add_sample(cumulative, le, suffix="_bucket")
    inf = dict(labels) if labels else {}
    inf["le"] = "+Inf"
    family.add_sample(count, inf, suffix="_bucket")
    family.add_sample(total_sum, labels, suffix="_sum")
    family.add_sample(count, labels, suffix="_count")
    return family


def render(families: Iterable[MetricFamily]) -> str:
    """The full exposition document: families in the given order, one
    trailing newline."""
    lines: list[str] = []
    for family in families:
        lines.extend(family.render_lines())
    return "\n".join(lines) + "\n"


def export_prometheus(db) -> str:
    """Every Prometheus family the engine exports, in one scrape body.

    Order is fixed — query-stats, cache, serving (only while a server is
    open), live, durability (only with a ``data_dir``) — so consecutive
    scrapes of an idle instance are byte-identical.
    """
    families = list(db.query_stats.prom_families())
    families.extend(db.cache.prom_families())
    server = getattr(db, "_server", None)
    if server is not None and not server.closed:
        families.extend(server.prom_families())
    families.extend(db.live.prom_families())
    if getattr(db, "durability", None) is not None:
        families.extend(durability_families(db))
    return render(families)


def durability_families(db) -> list[MetricFamily]:
    """``repro_durability_*``: WAL, checkpoint, recovery and resync
    counters plus the number of segments currently resyncing."""
    stats = db.durability.stats_dict()
    out: list[MetricFamily] = []

    def counter(name: str, help_text: str, value) -> None:
        family = MetricFamily(
            f"repro_durability_{name}", "counter", help_text
        )
        family.add(value)
        out.append(family)

    counter("wal_records_total", "WAL records appended.", stats["wal_records"])
    counter("wal_bytes_total", "WAL bytes appended.", stats["wal_bytes"])
    counter("wal_fsyncs_total", "WAL fsync calls.", stats["wal_fsyncs"])
    counter("checkpoints_total", "Checkpoints taken.", stats["checkpoints"])
    counter(
        "checkpoint_seconds_total",
        "Wall seconds spent checkpointing.",
        stats["checkpoint_seconds_total"],
    )
    counter(
        "wal_truncations_total",
        "WAL truncations after checkpoints.",
        stats["wal_truncations"],
    )
    counter(
        "recovery_replayed_total",
        "WAL records replayed during restart recovery.",
        stats["recovery_replayed_records"],
    )
    counter(
        "resync_replayed_total",
        "WAL records replayed into rejoining copies.",
        stats["resync_replayed_records"],
    )
    gauge = MetricFamily(
        "repro_durability_resyncing_segments",
        "gauge",
        "Segments currently replaying missed mutations.",
    )
    gauge.add(len(db.health.resyncing_segments))
    out.append(gauge)
    return out
