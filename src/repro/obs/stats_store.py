"""Process-lifetime cumulative query statistics (pg_stat_statements-style).

One :class:`QueryStatsStore` lives for the lifetime of a
:class:`~repro.engine.Database` and aggregates every executed statement
under its normalized **fingerprint**: the statement re-tokenized with
literals replaced by ``?`` (parameters keep their ``$n``), identifiers
and keywords case-folded, whitespace canonicalised.  Two executions of
the same query shape — different constants, different spacing — share one
entry, exactly like ``pg_stat_statements``.

Per entry: calls, total/mean/max wall time, rows returned, partitions
scanned vs. eligible (the paper's elimination effectiveness, cumulative),
and resilience counters (slice retries, failovers).

Exports:

* :meth:`QueryStatsStore.to_dict` / :meth:`to_json` — stable JSON, entries
  key-sorted by fingerprint;
* :meth:`QueryStatsStore.to_prometheus` — Prometheus text exposition
  (``# HELP`` / ``# TYPE`` headers, one metric per line, fingerprint as
  the ``query`` label);
* :meth:`QueryStatsStore.render` — the ``\\stats`` CLI table.
"""

from __future__ import annotations

import json
import threading

from ..errors import ReproError
from ..sql import lexer


def fingerprint(query: str) -> str:
    """Normalize one statement to its fingerprint.

    Falls back to whitespace-collapsed lower-casing when the statement
    does not lex (the store must never fail recording).
    """
    try:
        tokens = lexer.tokenize(query)
    except ReproError:
        return " ".join(query.lower().split())
    parts: list[str] = []
    for token in tokens:
        if token.kind == lexer.EOF:
            break
        if token.kind in (lexer.NUMBER, lexer.STRING):
            parts.append("?")
        elif token.kind == lexer.PARAM:
            parts.append(f"${token.value}")
        else:
            parts.append(str(token.value))
    return " ".join(parts)


class QueryStats:
    """Cumulative counters for one query fingerprint."""

    __slots__ = (
        "fingerprint",
        "calls",
        "total_seconds",
        "max_seconds",
        "rows",
        "rows_scanned",
        "partitions_scanned",
        "partitions_eligible",
        "retries",
        "failovers",
    )

    def __init__(self, fp: str):
        self.fingerprint = fp
        self.calls = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0
        self.rows = 0
        self.rows_scanned = 0
        self.partitions_scanned = 0
        self.partitions_eligible = 0
        self.retries = 0
        self.failovers = 0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "calls": self.calls,
            "total_seconds": self.total_seconds,
            "mean_seconds": self.mean_seconds,
            "max_seconds": self.max_seconds,
            "rows": self.rows,
            "rows_scanned": self.rows_scanned,
            "partitions_scanned": self.partitions_scanned,
            "partitions_eligible": self.partitions_eligible,
            "retries": self.retries,
            "failovers": self.failovers,
        }


class QueryStatsStore:
    """Fingerprint → :class:`QueryStats`, fed by the engine per statement."""

    def __init__(self):
        self._entries: dict[str, QueryStats] = {}
        #: one store serves every query of a Database — queries issued
        #: from different threads must not tear an entry's counters
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def record(self, query: str, result) -> QueryStats:
        """Fold one :class:`~repro.executor.executor.ExecutionResult` into
        the store; returns the updated entry."""
        fp = fingerprint(query)
        metrics = result.metrics
        elapsed = result.elapsed_seconds
        with self._lock:
            entry = self._entries.get(fp)
            if entry is None:
                entry = QueryStats(fp)
                self._entries[fp] = entry
            entry.calls += 1
            entry.total_seconds += elapsed
            entry.max_seconds = max(entry.max_seconds, elapsed)
            entry.rows += len(result.rows)
            entry.rows_scanned += metrics.total_rows_scanned
            entry.partitions_scanned += metrics.partitions_scanned()
            for stats in metrics.table_stats().values():
                if stats.get("partitions_total"):
                    entry.partitions_eligible += stats["partitions_total"]
            entry.retries += metrics.retry_count
            entry.failovers += metrics.failover_count
        return entry

    def get(self, query_or_fingerprint: str) -> QueryStats | None:
        """Look up by raw query text or by an exact fingerprint."""
        fp = query_or_fingerprint
        if fp not in self._entries:
            fp = fingerprint(query_or_fingerprint)
        return self._entries.get(fp)

    def entries(self) -> list[QueryStats]:
        """All entries, fingerprint-sorted (the stable export order)."""
        return [self._entries[fp] for fp in sorted(self._entries)]

    def reset(self) -> None:
        with self._lock:
            self._entries.clear()

    # -- exports -------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "queries": [entry.to_dict() for entry in self.entries()],
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def prom_families(self) -> list:
        """The ``repro_query_*`` families (one sample per fingerprint)
        for the shared exporter (:mod:`repro.obs.prom`)."""
        from .prom import MetricFamily

        metrics = [
            ("repro_query_calls_total", "counter",
             "Executions per query fingerprint",
             lambda e: e.calls),
            ("repro_query_seconds_total", "counter",
             "Cumulative wall time per query fingerprint",
             lambda e: e.total_seconds),
            ("repro_query_seconds_max", "gauge",
             "Longest single execution per query fingerprint",
             lambda e: e.max_seconds),
            ("repro_query_rows_total", "counter",
             "Rows returned per query fingerprint",
             lambda e: e.rows),
            ("repro_query_rows_scanned_total", "counter",
             "Rows read from storage per query fingerprint",
             lambda e: e.rows_scanned),
            ("repro_query_partitions_scanned_total", "counter",
             "Leaf partitions opened per query fingerprint",
             lambda e: e.partitions_scanned),
            ("repro_query_partitions_eligible_total", "counter",
             "Leaf partitions that would be opened without elimination",
             lambda e: e.partitions_eligible),
            ("repro_query_retries_total", "counter",
             "Slice retries per query fingerprint",
             lambda e: e.retries),
            ("repro_query_failovers_total", "counter",
             "Segment failovers per query fingerprint",
             lambda e: e.failovers),
        ]
        entries = self.entries()
        families = []
        for name, kind, help_text, value_of in metrics:
            family = MetricFamily(name, kind, help_text)
            for entry in entries:
                family.add(value_of(entry), query=entry.fingerprint)
            families.append(family)
        return families

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (0.0.4): ``# HELP``/``# TYPE``
        headers, one sample per line, the fingerprint as ``query`` label."""
        from .prom import render

        return render(self.prom_families())

    def render(self, limit: int = 50) -> str:
        """The ``\\stats`` table: entries by cumulative time, descending."""
        if not self._entries:
            return "query statistics: empty (no statements recorded)"
        ranked = sorted(
            self._entries.values(),
            key=lambda e: (-e.total_seconds, e.fingerprint),
        )[:limit]
        header = (
            f"{'calls':>6}  {'total ms':>9}  {'mean ms':>8}  {'max ms':>8}  "
            f"{'rows':>8}  {'parts k/N':>10}  query"
        )
        lines = [
            f"query statistics ({len(self._entries)} fingerprints):",
            header,
            "-" * len(header),
        ]
        for e in ranked:
            parts = f"{e.partitions_scanned}/{e.partitions_eligible}"
            query = e.fingerprint
            if len(query) > 60:
                query = query[:57] + "..."
            lines.append(
                f"{e.calls:>6}  {e.total_seconds * 1000:>9.2f}  "
                f"{e.mean_seconds * 1000:>8.2f}  {e.max_seconds * 1000:>8.2f}  "
                f"{e.rows:>8}  {parts:>10}  {query}"
            )
        return "\n".join(lines)
