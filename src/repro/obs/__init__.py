"""Observability: per-node execution metrics and EXPLAIN ANALYZE.

The paper's whole evaluation (Section 4) is built on runtime observables —
partitions scanned per DynamicScan, rows moved per Motion, per-slice wall
time.  This package makes those observables first class:

* :class:`MetricsCollector` — per-query collector threaded through
  :class:`~repro.executor.context.ExecContext`; every plan node gets
  per-segment row/loop/time counters, scans get partition counters,
  Motions get rows/bytes-moved counters, and each PartitionSelector
  records its elimination mode (static vs dynamic) and selectivity.
* :func:`render_explain_analyze` — the physical plan annotated with
  actuals next to the optimizer's estimates (``EXPLAIN ANALYZE``).
* ``MetricsCollector.to_json()`` — a stable JSON export consumed by the
  CLI, the benchmarks and external tooling (schema documented in
  ``docs/architecture.md``).
"""

from .metrics import MetricsCollector, NodeMetrics, ScanTracker
from .render import render_explain_analyze

__all__ = [
    "MetricsCollector",
    "NodeMetrics",
    "ScanTracker",
    "render_explain_analyze",
]
