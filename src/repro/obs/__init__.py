"""Observability: metrics, query-lifecycle tracing and cumulative stats.

The paper's whole evaluation (Section 4) is built on runtime observables —
partitions scanned per DynamicScan, rows moved per Motion, per-slice wall
time.  This package makes those observables first class:

* :class:`MetricsCollector` — per-query collector threaded through
  :class:`~repro.executor.context.ExecContext`; every plan node gets
  per-segment row/loop/time counters, scans get partition counters,
  Motions get rows/bytes-moved counters, and each PartitionSelector
  records its elimination mode (static vs dynamic) and selectivity.
* :func:`render_explain_analyze` — the physical plan annotated with
  actuals next to the optimizer's estimates (``EXPLAIN ANALYZE``).
* :mod:`repro.obs.trace` — span-based query-lifecycle tracing
  (parse → bind → optimize → place_partition_selectors → lower →
  execute, with per-slice child spans), off by default and free when off.
* :mod:`repro.obs.opt_events` — typed Cascades search events (groups,
  rule firings, enforcer decisions, costed winners) emitted by the
  optimizer into the active trace; rendered by ``EXPLAIN (TRACE)``.
* :class:`QueryStatsStore` — process-lifetime cumulative per-fingerprint
  query statistics with JSON and Prometheus-text exports (``db.stats()``
  and the CLI's ``\\stats``).
* :mod:`repro.obs.live` — the live operations hub (``db.live``): the
  in-flight query activity registry (``pg_stat_activity``-style, with
  cancel-by-id), bounded latency/queue-wait/scan-ratio histograms,
  ticker-sampled gauge series and the structured slow-query log
  (:mod:`repro.obs.slowlog`).
* :mod:`repro.obs.prom` — the one shared Prometheus text-exposition
  exporter every subsystem's families render through
  (``\\stats prometheus`` and ``GET /metrics``).
* ``MetricsCollector.to_json()`` — a stable JSON export consumed by the
  CLI, the benchmarks and external tooling (schema documented in
  ``docs/observability.md``).
"""

from .live import ActivityRegistry, GaugeSeries, Histogram, LiveTelemetry
from .metrics import MetricsCollector, NodeMetrics, ScanTracker
from .opt_events import OptimizerEventLog
from .prom import MetricFamily, export_prometheus
from .render import render_explain_analyze, render_explain_trace
from .slowlog import SlowQueryLog
from .stats_store import QueryStatsStore, fingerprint
from .trace import Span, Tracer, activate, feed_phases

__all__ = [
    "ActivityRegistry",
    "GaugeSeries",
    "Histogram",
    "LiveTelemetry",
    "MetricFamily",
    "MetricsCollector",
    "NodeMetrics",
    "OptimizerEventLog",
    "QueryStatsStore",
    "ScanTracker",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "activate",
    "export_prometheus",
    "feed_phases",
    "fingerprint",
    "render_explain_analyze",
    "render_explain_trace",
]
