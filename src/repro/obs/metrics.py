"""The per-query metrics collector.

One :class:`MetricsCollector` lives for one query execution.  It is
deliberately decoupled from the physical operator classes: the executor
registers the plan tree up front (capturing names, details and estimates),
and the iterators report into it through a handful of typed recording
methods.  All counters are scoped per (node, segment); slice wall times
are scoped per slice.  Aggregates are computed on demand.

Row counting is always on (one generator frame and one integer increment
per row per node); per-node wall-clock timing is collected only when the
query runs with ``analyze=True``, because it costs two ``perf_counter``
calls per row per node.

The JSON export (:meth:`MetricsCollector.to_dict` /
:meth:`MetricsCollector.to_json`) is the stable interface consumed by the
CLI, the benchmarks and the tests; its schema is documented in
``docs/architecture.md`` ("Observability").
"""

from __future__ import annotations

import json
import threading
import time
from itertools import chain
from typing import Any, Iterator

#: bump when the shape of :meth:`MetricsCollector.to_dict` changes
#: v2: added the top-level "resilience" section (retries, failovers,
#: fault-injection hit counters, segment health); every v1 field is
#: unchanged.
#: v3: additive "trace" and "optimizer" sections (null unless the query
#: ran with tracing — see docs/observability.md); scan nodes and table
#: entries gain sorted "partition_oids" lists; table keys are sorted so
#: the export is byte-stable across runs.
#: v4: additive "parallel" section (worker count, mode, per-(slice,
#: segment) instance wall times and the overlap ratio across them — see
#: docs/parallelism.md); every v3 field is unchanged.
#: v5: additive "cache" section (null unless the query ran with a cache
#: session): mode, per-query selector/result outcomes, and cumulative
#: hits/misses/invalidations/bytes — see docs/caching.md; every v4 field
#: is unchanged.
#: v6: additive "serving" section (null unless the query ran through a
#: serving session): session name, queue wait, requested vs. effective
#: (possibly degraded) worker width, and an admission-counter snapshot —
#: see docs/serving.md; every v5 field is unchanged.
#: v7: additive "live" section (null unless the statement registered with
#: the live activity registry — every Database.sql() call does): query
#: id, session, queue wait, elapsed time and the lifecycle phase log —
#: see docs/observability.md; every v6 field is unchanged.
#: v8: additive "durability" section ({"enabled": false} on a volatile
#: instance): WAL record/byte/fsync counters, checkpoint count/duration/
#: size, restart-recovery and resync replay counters, and the live
#: resyncing-segment list — see docs/durability.md; every v7 field is
#: unchanged.
#: v9: the "parallel" section gains "batch_size" (the vectorized batch
#: width the executor ran with; 1 = row-at-a-time) — see
#: docs/parallelism.md; every v8 field is unchanged.
METRICS_SCHEMA_VERSION = 9


class ScanTracker:
    """Aggregate per-query record of partitions and rows touched by scans.

    Kept as the backward-compatible summary view (``result.tracker``); the
    per-node detail lives in :class:`NodeMetrics`.
    """

    def __init__(self) -> None:
        #: table name -> set of leaf OIDs actually scanned
        self.partitions: dict[str, set[int]] = {}
        self.rows_scanned = 0

    def record_leaf(self, table_name: str, leaf_oid: int) -> None:
        self.partitions.setdefault(table_name, set()).add(leaf_oid)

    def record_rows(self, count: int) -> None:
        self.rows_scanned += count

    def partitions_scanned(self, table_name: str) -> int:
        return len(self.partitions.get(table_name, ()))

    def total_partitions_scanned(self) -> int:
        return sum(len(oids) for oids in self.partitions.values())


class NodeMetrics:
    """Actuals for one physical plan node, scoped per segment."""

    __slots__ = (
        "node_id",
        "op",
        "detail",
        "parent",
        "depth",
        "estimated_rows",
        "distribution",
        "rows_out",
        "loops",
        "time_s",
        "table_name",
        "partitions",
        "partitions_total",
        "rows_scanned",
        "motion_kind",
        "rows_by_target",
        "bytes_moved",
        "part_scan_id",
    )

    def __init__(
        self,
        node_id: int,
        op: str,
        num_segments: int,
        detail: str = "",
        parent: int | None = None,
        depth: int = 0,
        estimated_rows: float | None = None,
        distribution: str | None = None,
    ):
        self.node_id = node_id
        self.op = op
        self.detail = detail
        self.parent = parent
        self.depth = depth
        self.estimated_rows = estimated_rows
        self.distribution = distribution
        #: rows produced by this node, per segment
        self.rows_out = [0] * num_segments
        #: iterator instantiations, per segment
        self.loops = [0] * num_segments
        #: inclusive wall time (self + children), per segment; only filled
        #: when timing collection is enabled
        self.time_s = [0.0] * num_segments
        # scan-specific
        self.table_name: str | None = None
        #: leaf OIDs scanned, per segment
        self.partitions: list[set[int]] = [set() for _ in range(num_segments)]
        self.partitions_total: int | None = None
        self.rows_scanned = [0] * num_segments
        # motion-specific
        self.motion_kind: str | None = None
        self.rows_by_target = [0] * num_segments
        self.bytes_moved = 0
        # selector / dynamic-scan linkage
        self.part_scan_id: int | None = None

    # -- aggregates ---------------------------------------------------------

    @property
    def actual_rows(self) -> int:
        return sum(self.rows_out)

    @property
    def total_loops(self) -> int:
        return sum(self.loops)

    @property
    def total_time_s(self) -> float:
        return sum(self.time_s)

    @property
    def partitions_scanned(self) -> int:
        return len(set().union(*self.partitions)) if self.partitions else 0

    @property
    def total_rows_scanned(self) -> int:
        return sum(self.rows_scanned)

    @property
    def rows_moved(self) -> int:
        return sum(self.rows_by_target)

    @property
    def is_scan(self) -> bool:
        return self.table_name is not None

    @property
    def is_motion(self) -> bool:
        return self.motion_kind is not None

    def to_dict(self, timing: bool = False) -> dict:
        node: dict[str, Any] = {
            "id": self.node_id,
            "op": self.op,
            "detail": self.detail,
            "parent": self.parent,
            "depth": self.depth,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "rows_by_segment": list(self.rows_out),
            "loops": self.total_loops,
        }
        node["time_ms"] = self.total_time_s * 1000.0 if timing else None
        if self.is_scan:
            node["scan"] = {
                "table": self.table_name,
                "partitions_scanned": self.partitions_scanned,
                "partitions_total": self.partitions_total,
                # sorted so golden-file comparisons are stable (v3)
                "partition_oids": sorted(set().union(*self.partitions))
                if self.partitions
                else [],
                "rows_scanned": self.total_rows_scanned,
            }
        if self.is_motion:
            node["motion"] = {
                "kind": self.motion_kind,
                "rows_moved": self.rows_moved,
                "rows_by_target": list(self.rows_by_target),
                "bytes_moved": self.bytes_moved,
            }
        if self.part_scan_id is not None:
            node["part_scan_id"] = self.part_scan_id
        return node


class MetricsCollector:
    """All measurements of one query execution.

    The executor registers the plan (:meth:`register_plan`), wraps every
    iterator through :meth:`instrument`, and the scan / selector / motion
    recording methods fill in the operator-specific counters.
    """

    def __init__(self, num_segments: int, timing: bool = False):
        self.num_segments = num_segments
        self.timing = timing
        self.tracker = ScanTracker()
        self.nodes: list[NodeMetrics] = []
        self.elapsed_seconds = 0.0
        #: guards shared-structure mutation from worker threads (node and
        #: selector creation, retry/failover/instance logs, worker merges);
        #: per-(node, segment) counter slots are touched by exactly one
        #: (slice, segment) instance at a time and stay lock-free
        self._lock = threading.RLock()
        # parallel execution (schema v4)
        #: worker-pool size the query ran with (1 = serial)
        self.workers = 1
        #: vectorized batch width the query ran with (schema v9;
        #: 1 = row-at-a-time)
        self.batch_size = 1
        #: one entry per (slice, segment) instance: wall seconds on its worker
        self.instances: list[dict] = []
        #: part_scan_id -> {"mode", "total", "selected" per-segment sets}
        self.selectors: dict[int, dict] = {}
        #: slice_id -> {"label", "seconds"}
        self.slices: list[dict] = []
        #: table name -> total leaf count (for k/N reporting)
        self._table_totals: dict[str, int] = {}
        self._by_op: dict[int, NodeMetrics] = {}
        self._plan = None  # pinned so id(op) keys stay unique
        # resilience (schema v2)
        #: one entry per slice retry: {"slice_id", "attempt", "segment", "point"}
        self.retries: list[dict] = []
        #: one entry per primary->mirror failover: {"segment", "reason"}
        self.failovers: list[dict] = []
        #: injection point -> {"hits", "fired"} snapshot at query end
        self.fault_points: dict[str, dict] = {}
        #: SegmentHealth.status() snapshot at query end
        self.segment_health: dict | None = None
        # tracing (schema v3) — populated only when the query was traced
        #: Tracer.to_dict() snapshot: lifecycle phases + span list
        self.trace_summary: dict | None = None
        #: OptimizerEventLog.summary() snapshot: search statistics
        self.optimizer_summary: dict | None = None
        # caching (schema v5) — populated only when a cache session ran
        #: CacheSession.summary() snapshot: mode, outcomes, totals
        self.cache_summary: dict | None = None
        # serving (schema v6) — populated only for serving-session queries
        #: QueryServer submit summary: queue wait, degraded worker width
        self.serving_summary: dict | None = None
        # live telemetry (schema v7) — populated by the activity registry
        #: LiveTelemetry.complete() summary: query id, phase log, timings
        self.live_summary: dict | None = None
        # durability (schema v8) — WAL/checkpoint/recovery counters at
        #: query end ({"enabled": false} on a volatile instance)
        self.durability_summary: dict | None = None

    # -- plan registration --------------------------------------------------

    def register_plan(self, plan) -> None:
        """Pre-order walk capturing the tree shape, names and estimates."""
        self._plan = plan

        def visit(op, parent: int | None, depth: int) -> None:
            node = NodeMetrics(
                len(self.nodes),
                op.name,
                self.num_segments,
                detail=op.describe(),
                parent=parent,
                depth=depth,
                estimated_rows=op.estimated_rows,
                distribution=(
                    repr(op.distribution)
                    if op.distribution is not None
                    else None
                ),
            )
            self.nodes.append(node)
            self._by_op[id(op)] = node
            for child in op.children:
                visit(child, node.node_id, depth + 1)

        visit(plan.root, None, 0)

    def node(self, op) -> NodeMetrics:
        """The metrics record for a plan operator (auto-registers ops that
        were not part of the registered tree, e.g. hand-built subtrees)."""
        found = self._by_op.get(id(op))
        if found is None:
            with self._lock:
                found = self._by_op.get(id(op))
                if found is None:
                    found = NodeMetrics(
                        len(self.nodes),
                        getattr(op, "name", type(op).__name__),
                        self.num_segments,
                        detail=(
                            op.describe() if hasattr(op, "describe") else ""
                        ),
                    )
                    self.nodes.append(found)
                    self._by_op[id(op)] = found
        return found

    # -- generic per-node instrumentation -----------------------------------

    def instrument(self, op, segment: int, inner: Iterator[tuple]):
        """Wrap one node's iterator with row counting (and timing when
        enabled).  Time is inclusive of children, like EXPLAIN ANALYZE."""
        node = self.node(op)
        node.loops[segment] += 1
        if self.timing:
            return _timed_iter(node, segment, inner)
        return _counted_iter(node, segment, inner)

    def instrument_batches(self, op, segment: int, inner):
        """Batch counterpart of :meth:`instrument`: ``inner`` yields row
        batches, and each batch charges ``len(batch)`` to ``rows_out`` in
        one increment."""
        node = self.node(op)
        node.loops[segment] += 1
        if self.timing:
            return _timed_batch_iter(node, segment, inner)
        return _counted_batch_iter(node, segment, inner)

    # -- scans --------------------------------------------------------------

    def record_leaf(self, op, table, leaf_oid: int, segment: int) -> None:
        """One leaf partition opened by a (Dynamic/Leaf)Scan."""
        self.tracker.record_leaf(table.name, leaf_oid)
        node = self.node(op)
        node.table_name = table.name
        if node.partitions_total is None:
            node.partitions_total = table.num_leaves
            self._table_totals[table.name] = table.num_leaves
        node.partitions[segment].add(leaf_oid)

    def record_scan_rows(self, op, table, segment: int, count: int) -> None:
        """Raw rows read from storage by a scan node."""
        self.tracker.record_rows(count)
        node = self.node(op)
        node.table_name = table.name
        node.rows_scanned[segment] += count

    # -- partition selection ------------------------------------------------

    def record_selector(
        self, part_scan_id: int, mode: str, total: int
    ) -> None:
        """Declare a producer's elimination mode: 'static' (computed once,
        before any tuple flows) or 'dynamic' (per streamed tuple)."""
        entry = self._selector(part_scan_id)
        entry["mode"] = mode
        entry["total"] = total

    def record_propagation(
        self, part_scan_id: int, segment: int, oid: int
    ) -> None:
        """One OID pushed through ``partition_propagation`` (Table 1)."""
        entry = self._selector(part_scan_id)
        entry["selected"][segment].add(oid)
        entry["pushed"] += 1

    def _selector(self, part_scan_id: int) -> dict:
        entry = self.selectors.get(part_scan_id)
        if entry is None:
            with self._lock:
                entry = self.selectors.get(part_scan_id)
                if entry is None:
                    entry = {
                        "mode": None,
                        "total": None,
                        "selected": [
                            set() for _ in range(self.num_segments)
                        ],
                        "pushed": 0,
                    }
                    self.selectors[part_scan_id] = entry
        return entry

    def selector_summary(self, part_scan_id: int) -> dict | None:
        entry = self.selectors.get(part_scan_id)
        if entry is None:
            return None
        selected: set[int] = set().union(*entry["selected"])
        return {
            "part_scan_id": part_scan_id,
            "mode": entry["mode"],
            "partitions_selected": len(selected),
            "partitions_total": entry["total"],
            "oids_pushed": entry["pushed"],
        }

    # -- motions ------------------------------------------------------------

    def record_motion(
        self, op, kind: str, target_segment: int, row: tuple
    ) -> None:
        """One row routed by a Motion to ``target_segment``."""
        node = self.node(op)
        node.motion_kind = kind
        node.rows_by_target[target_segment] += 1
        node.bytes_moved += _row_bytes(row)

    def record_motion_batch(
        self, op, kind: str, target_segment: int, rows: list
    ) -> None:
        """A batch of rows routed by a Motion to ``target_segment``; same
        counters as ``len(rows)`` :meth:`record_motion` calls."""
        node = self.node(op)
        node.motion_kind = kind
        node.rows_by_target[target_segment] += len(rows)
        node.bytes_moved += _batch_bytes(rows)

    # -- slices -------------------------------------------------------------

    def record_slice(self, slice_id: int, label: str, seconds: float) -> None:
        with self._lock:
            self.slices.append(
                {"id": slice_id, "label": label, "seconds": seconds}
            )

    def finish(self, elapsed_seconds: float) -> None:
        self.elapsed_seconds = elapsed_seconds

    # -- parallel execution (schema v4) ---------------------------------------

    def record_workers(self, workers: int) -> None:
        """The worker-pool size the query ran with (1 = serial)."""
        self.workers = workers

    def record_batch_size(self, batch_size: int) -> None:
        """The vectorized batch width the query ran with (1 = row-at-a-
        time; schema v9)."""
        self.batch_size = batch_size

    def record_instance(
        self, slice_id: int, segment: int, seconds: float
    ) -> None:
        """Wall time of one (slice, segment) instance on its worker."""
        with self._lock:
            self.instances.append(
                {"slice_id": slice_id, "segment": segment, "seconds": seconds}
            )

    def worker(self, segment: int) -> "WorkerMetrics":
        """A per-worker recording view for one (slice, segment) instance.

        Contended counters accumulate locally in the view and fold back in
        one :meth:`WorkerMetrics.merge` call under the collector lock, so
        the per-row recording path never takes a lock."""
        return WorkerMetrics(self, segment)

    def parallel_stats(self) -> dict:
        """The schema-v4 "parallel" section: worker count, per-instance
        wall times, and how much segment work overlapped.

        ``overlap`` is Σ instance wall seconds / query elapsed seconds —
        1.0 means no concurrency benefit, values approaching the worker
        count mean the instances genuinely ran side by side.  Reported
        only for parallel runs with a measured elapsed time."""
        instances = sorted(
            self.instances,
            key=lambda e: (e["slice_id"], e["segment"]),
        )
        busy = sum(entry["seconds"] for entry in instances)
        overlap = None
        if self.workers > 1 and self.elapsed_seconds > 0:
            overlap = busy / self.elapsed_seconds
        return {
            "workers": self.workers,
            "mode": "parallel" if self.workers > 1 else "serial",
            "batch_size": self.batch_size,
            "instances": instances,
            "instance_busy_seconds": busy,
            "overlap": overlap,
        }

    # -- resilience (schema v2) ----------------------------------------------

    def record_retry(
        self,
        slice_id: int,
        attempt: int,
        segment: int | None,
        point: str | None,
    ) -> None:
        """One slice re-run after a :class:`SegmentFailure`.

        Note that node row counters are cumulative across attempts, so
        ``rows_out``/``loops`` over-count when retries occurred; the retry
        log here is what lets a reader normalise.
        """
        with self._lock:
            self.retries.append(
                {
                    "slice_id": slice_id,
                    "attempt": attempt,
                    "segment": segment,
                    "point": point,
                }
            )

    def record_failover(self, segment: int, reason: str) -> None:
        """One primary marked down with its mirror taking over."""
        with self._lock:
            self.failovers.append({"segment": segment, "reason": reason})

    def record_fault_points(self, snapshot: dict[str, dict]) -> None:
        """Final per-injection-point hit/fired counters for the query."""
        self.fault_points = dict(snapshot)

    def record_segment_health(self, status: dict) -> None:
        """Final :meth:`SegmentHealth.status` snapshot for the query."""
        self.segment_health = status

    # -- tracing (schema v3) ---------------------------------------------------

    def record_trace(self, summary: dict) -> None:
        """Attach a traced run's span summary (:meth:`Tracer.to_dict`)."""
        self.trace_summary = summary

    def record_optimizer(self, summary: dict) -> None:
        """Attach the optimizer search summary
        (:meth:`OptimizerEventLog.summary`)."""
        self.optimizer_summary = summary

    # -- caching (schema v5) ---------------------------------------------------

    def record_cache(self, summary: dict) -> None:
        """Attach the statement's cache-session summary
        (:meth:`~repro.cache.CacheSession.summary`); the engine re-records
        after a result-cache commit so the section reflects the final
        outcome."""
        self.cache_summary = summary

    # -- serving (schema v6) ---------------------------------------------------

    def record_serving(self, summary: dict) -> None:
        """Attach the grant summary of a serving-session execution
        (session name, queue wait, requested vs. effective workers, and
        the admission counters at completion)."""
        self.serving_summary = summary

    # -- live telemetry (schema v7) --------------------------------------------

    def record_live(self, summary: dict) -> None:
        """Attach the statement's live-activity summary
        (:meth:`~repro.obs.live.LiveTelemetry.complete`): query id,
        session, queue wait, elapsed time and the lifecycle phase log."""
        self.live_summary = summary

    # -- durability (schema v8) ------------------------------------------------

    def record_durability(self, summary: dict) -> None:
        """Attach the instance's durability counters at query end
        (:meth:`~repro.durability.DurabilityManager.stats_dict` plus the
        live resync state; ``{"enabled": False}`` when volatile)."""
        self.durability_summary = summary

    @property
    def retry_count(self) -> int:
        return len(self.retries)

    @property
    def failover_count(self) -> int:
        return len(self.failovers)

    def resilience_stats(self) -> dict:
        return {
            "retries": list(self.retries),
            "retry_count": self.retry_count,
            "failovers": list(self.failovers),
            "failover_count": self.failover_count,
            "fault_points": {
                point: dict(counters)
                for point, counters in sorted(self.fault_points.items())
            },
            "segment_health": self.segment_health,
        }

    # -- aggregate views -----------------------------------------------------

    @property
    def total_rows_scanned(self) -> int:
        return self.tracker.rows_scanned

    def partitions_scanned(self, table_name: str | None = None) -> int:
        if table_name is not None:
            return self.tracker.partitions_scanned(table_name)
        return self.tracker.total_partitions_scanned()

    def table_stats(self) -> dict[str, dict]:
        """Per-table scan summary: partitions scanned / total, sorted OID
        list, rows read.  Keys are sorted by table name so the export is
        stable across runs (v3)."""
        stats: dict[str, dict] = {}
        for name, oids in self.tracker.partitions.items():
            stats[name] = {
                "partitions_scanned": len(oids),
                "partitions_total": self._table_totals.get(name),
                "partition_oids": sorted(oids),
                "rows_scanned": 0,
            }
        for node in self.nodes:
            if node.table_name is None:
                continue
            entry = stats.setdefault(
                node.table_name,
                {
                    "partitions_scanned": 0,
                    "partitions_total": self._table_totals.get(
                        node.table_name
                    ),
                    "partition_oids": [],
                    "rows_scanned": 0,
                },
            )
            entry["rows_scanned"] += node.total_rows_scanned
        return dict(sorted(stats.items()))

    def motion_stats(self) -> dict:
        """Aggregate Motion traffic, total and per kind."""
        by_kind: dict[str, dict] = {}
        for node in self.nodes:
            if not node.is_motion:
                continue
            entry = by_kind.setdefault(
                node.motion_kind, {"rows_moved": 0, "bytes_moved": 0}
            )
            entry["rows_moved"] += node.rows_moved
            entry["bytes_moved"] += node.bytes_moved
        return {
            "rows_moved": sum(e["rows_moved"] for e in by_kind.values()),
            "bytes_moved": sum(e["bytes_moved"] for e in by_kind.values()),
            "by_kind": by_kind,
        }

    # -- export -------------------------------------------------------------

    def to_dict(self) -> dict:
        motion = self.motion_stats()
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "elapsed_seconds": self.elapsed_seconds,
            "num_segments": self.num_segments,
            "timing_collected": self.timing,
            "nodes": [node.to_dict(self.timing) for node in self.nodes],
            "partition_selectors": {
                str(scan_id): self.selector_summary(scan_id)
                for scan_id in sorted(self.selectors)
            },
            "slices": list(self.slices),
            "tables": self.table_stats(),
            "totals": {
                "rows_scanned": self.total_rows_scanned,
                "partitions_scanned": self.partitions_scanned(),
                "motion_rows": motion["rows_moved"],
                "motion_bytes": motion["bytes_moved"],
            },
            "resilience": self.resilience_stats(),
            "trace": self.trace_summary,
            "optimizer": self.optimizer_summary,
            "parallel": self.parallel_stats(),
            "cache": self.cache_summary,
            "serving": self.serving_summary,
            "live": self.live_summary,
            "durability": self.durability_summary,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)


class WorkerMetrics:
    """Per-worker recording view of one (slice, segment) instance.

    The parallel scheduler hands each instance this thin facade instead of
    the shared :class:`MetricsCollector`.  Counters that are slotted per
    segment (``rows_out``, ``loops``, ``time_s``, per-segment partition
    sets) are touched by exactly one instance per slice, so those calls
    delegate straight to the collector, lock-free.  The counters that
    *would* be contended across workers — ``ScanTracker`` totals, Motion
    ``rows_by_target``/``bytes_moved`` (many producers, one target), and
    selector ``pushed`` counts — accumulate locally and fold back in a
    single :meth:`merge` under the collector lock when the instance ends.

    ``merge`` runs on success *and* failure (before an instance retry), so
    parallel counters stay cumulative across attempts exactly like the
    serial executor's.
    """

    def __init__(self, base: MetricsCollector, segment: int):
        self._base = base
        self.segment = segment
        self._rows_scanned = 0
        #: (table name, leaf oid) pairs for the aggregate ScanTracker
        self._leaves: list[tuple[str, int]] = []
        #: part_scan_id -> OIDs pushed by this instance
        self._pushed: dict[int, int] = {}
        #: id(op) -> [op, kind, rows per target segment, bytes moved]
        self._motions: dict[int, list] = {}

    def __getattr__(self, name: str):
        # everything not intercepted (instrument, node, record_slice, ...)
        # behaves exactly as on the shared collector
        return getattr(self._base, name)

    # -- intercepted recorders (contended counters buffered locally) ---------

    def record_leaf(self, op, table, leaf_oid: int, segment: int) -> None:
        self._leaves.append((table.name, leaf_oid))
        node = self._base.node(op)
        node.table_name = table.name
        if node.partitions_total is None:
            node.partitions_total = table.num_leaves
            self._base._table_totals[table.name] = table.num_leaves
        node.partitions[segment].add(leaf_oid)

    def record_scan_rows(self, op, table, segment: int, count: int) -> None:
        self._rows_scanned += count
        node = self._base.node(op)
        node.table_name = table.name
        node.rows_scanned[segment] += count

    def record_propagation(
        self, part_scan_id: int, segment: int, oid: int
    ) -> None:
        entry = self._base._selector(part_scan_id)
        entry["selected"][segment].add(oid)
        self._pushed[part_scan_id] = self._pushed.get(part_scan_id, 0) + 1

    def record_motion(
        self, op, kind: str, target_segment: int, row: tuple
    ) -> None:
        entry = self._motions.get(id(op))
        if entry is None:
            entry = [op, kind, [0] * self._base.num_segments, 0]
            self._motions[id(op)] = entry
        entry[2][target_segment] += 1
        entry[3] += _row_bytes(row)

    def record_motion_batch(
        self, op, kind: str, target_segment: int, rows: list
    ) -> None:
        entry = self._motions.get(id(op))
        if entry is None:
            entry = [op, kind, [0] * self._base.num_segments, 0]
            self._motions[id(op)] = entry
        entry[2][target_segment] += len(rows)
        entry[3] += _batch_bytes(rows)

    # -- fold-back -----------------------------------------------------------

    def merge(self) -> None:
        """Fold the local accumulators into the shared collector (one lock
        acquisition per instance, not per row) and reset them."""
        base = self._base
        with base._lock:
            base.tracker.record_rows(self._rows_scanned)
            for table_name, leaf_oid in self._leaves:
                base.tracker.record_leaf(table_name, leaf_oid)
            for part_scan_id, count in self._pushed.items():
                base._selector(part_scan_id)["pushed"] += count
            for op, kind, by_target, bytes_moved in self._motions.values():
                node = base.node(op)
                node.motion_kind = kind
                for target, count in enumerate(by_target):
                    node.rows_by_target[target] += count
                node.bytes_moved += bytes_moved
        self._rows_scanned = 0
        self._leaves = []
        self._pushed = {}
        self._motions = {}


def _counted_iter(node: NodeMetrics, segment: int, inner):
    rows_out = node.rows_out
    for row in inner:
        rows_out[segment] += 1
        yield row


def _timed_iter(node: NodeMetrics, segment: int, inner):
    rows_out = node.rows_out
    time_s = node.time_s
    perf = time.perf_counter
    while True:
        start = perf()
        try:
            row = next(inner)
        except StopIteration:
            time_s[segment] += perf() - start
            return
        time_s[segment] += perf() - start
        rows_out[segment] += 1
        yield row


def _counted_batch_iter(node: NodeMetrics, segment: int, inner):
    rows_out = node.rows_out
    for batch in inner:
        rows_out[segment] += len(batch)
        yield batch


def _timed_batch_iter(node: NodeMetrics, segment: int, inner):
    rows_out = node.rows_out
    time_s = node.time_s
    perf = time.perf_counter
    while True:
        start = perf()
        try:
            batch = next(inner)
        except StopIteration:
            time_s[segment] += perf() - start
            return
        time_s[segment] += perf() - start
        rows_out[segment] += len(batch)
        yield batch


def _row_bytes(row: tuple) -> int:
    """Cheap serialized-size estimate of one tuple (repr length plus a
    fixed per-field framing overhead), the basis of bytes-moved counters."""
    return sum(len(repr(value)) for value in row) + 8 * len(row)


def _batch_bytes(rows: list) -> int:
    """Sum of :func:`_row_bytes` over a batch, flattened into two C-level
    ``map`` passes — same totals, no per-row generator frames."""
    flat = list(chain.from_iterable(rows))
    return sum(map(len, map(repr, flat))) + 8 * len(flat)
