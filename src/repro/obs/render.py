"""EXPLAIN ANALYZE rendering: the plan tree annotated with actuals.

The collector's registered node list is already a pre-order walk of the
plan, so rendering needs no access to the physical operator objects —
each line mirrors :meth:`repro.physical.plan.Plan.explain` and appends
the measured counters in parentheses:

.. code-block:: text

    GatherMotion [gathered] rows≈470 (actual rows=497; moved 497 rows, 13.1 KB)
      HashAgg (...) rows≈470 (actual rows=497)
        DynamicScan (1, orders AS orders) rows≈500 (actual rows=497; partitions: 3/24)
        ...
    PartitionSelector 1: static, selected 3/24 partitions
    Slice 0 (root): 1.84 ms
"""

from __future__ import annotations

from .metrics import MetricsCollector, NodeMetrics


def render_explain_analyze(metrics: MetricsCollector) -> str:
    """The annotated plan plus selector and slice summaries."""
    lines = [_render_node(node, metrics) for node in metrics.nodes]
    for scan_id in sorted(metrics.selectors):
        summary = metrics.selector_summary(scan_id)
        assert summary is not None
        mode = summary["mode"] or "unknown"
        total = summary["partitions_total"]
        lines.append(
            f"PartitionSelector {scan_id}: {mode}, selected "
            f"{summary['partitions_selected']}/{total if total is not None else '?'}"
            " partitions"
        )
    for entry in metrics.slices:
        lines.append(
            f"Slice {entry['id']} ({entry['label']}): "
            f"{entry['seconds'] * 1000:.2f} ms"
        )
    if metrics.workers > 1:
        parallel = metrics.parallel_stats()
        line = f"Parallel: {parallel['workers']} workers"
        if parallel["overlap"] is not None:
            line += (
                f", {parallel['instance_busy_seconds'] * 1000:.2f} ms of "
                f"segment work in {metrics.elapsed_seconds * 1000:.2f} ms "
                f"wall ({parallel['overlap']:.2f}x overlap)"
            )
        lines.append(line)
    if metrics.cache_summary is not None:
        cache = metrics.cache_summary
        line = f"Cache: mode={cache['mode']}"
        if cache.get("result") is not None:
            line += f", result {cache['result']}"
        else:
            line += f", selection {cache['selection']}"
            if cache["selectors_served"] or cache["selectors_evaluated"]:
                line += (
                    f" ({cache['selectors_served']} selector instance"
                    f"{'' if cache['selectors_served'] == 1 else 's'} "
                    f"served, {cache['selectors_evaluated']} evaluated)"
                )
        if cache.get("stored"):
            line += ", stored"
        lines.append(line)
    if metrics.retry_count or metrics.failover_count:
        mirrored = sorted(
            {entry["segment"] for entry in metrics.failovers}
        )
        line = (
            f"Resilience: {metrics.retry_count} slice "
            f"retr{'y' if metrics.retry_count == 1 else 'ies'}, "
            f"{metrics.failover_count} failover"
            f"{'' if metrics.failover_count == 1 else 's'}"
        )
        if mirrored:
            line += (
                " (mirror serving segment"
                f"{'' if len(mirrored) == 1 else 's'} "
                + ", ".join(str(s) for s in mirrored)
                + ")"
            )
        lines.append(line)
    if metrics.elapsed_seconds:
        lines.append(f"Total: {metrics.elapsed_seconds * 1000:.2f} ms")
    return "\n".join(lines)


def _render_node(node: NodeMetrics, metrics: MetricsCollector) -> str:
    line = "  " * node.depth + node.op
    if node.detail:
        line += f" ({node.detail})"
    if node.distribution is not None:
        line += f" [{node.distribution}]"
    if node.estimated_rows is not None:
        line += f" rows≈{node.estimated_rows:.0f}"
    annotations = [f"actual rows={node.actual_rows}"]
    if node.total_loops != 1:
        annotations.append(f"loops={node.total_loops}")
    if metrics.timing:
        annotations.append(f"time={node.total_time_s * 1000:.2f} ms")
    if node.is_scan and node.partitions_total is not None:
        tag = f"partitions: {node.partitions_scanned}/{node.partitions_total}"
        if node.part_scan_id is not None:
            summary = metrics.selector_summary(node.part_scan_id)
            if summary is not None and summary["mode"] is not None:
                tag += f", {summary['mode']}"
        annotations.append(tag)
    if node.is_scan and node.total_rows_scanned:
        annotations.append(f"rows scanned={node.total_rows_scanned}")
    if node.is_motion:
        annotations.append(
            f"moved {node.rows_moved} rows, {_human_bytes(node.bytes_moved)}"
        )
    return line + " (" + "; ".join(annotations) + ")"


def render_explain_trace(plan_text: str, tracer) -> str:
    """``EXPLAIN (TRACE)``: the physical plan followed by the lifecycle
    span tree and the optimizer search summary.

    ``plan_text`` is :meth:`repro.physical.plan.Plan.explain` output;
    ``tracer`` is the :class:`~repro.obs.trace.Tracer` that was active
    while the plan was produced.
    """
    sections = [plan_text, "", "Optimization trace:"]
    span_tree = tracer.render()
    if span_tree:
        sections.extend("  " + line for line in span_tree.splitlines())
    else:
        sections.append("  (no spans recorded)")
    sections.append(tracer.optimizer.render())
    return "\n".join(sections)


def _human_bytes(count: int) -> str:
    if count >= 1024 * 1024:
        return f"{count / (1024 * 1024):.1f} MB"
    if count >= 1024:
        return f"{count / 1024:.1f} KB"
    return f"{count} B"
