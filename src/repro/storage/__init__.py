"""In-memory MPP storage: hash distribution, heap tables, OID-addressed
leaf partitions."""

from .distribution import segment_for, stable_hash
from .partitioned import StorageManager
from .table import TableStore

__all__ = ["StorageManager", "TableStore", "segment_for", "stable_hash"]
