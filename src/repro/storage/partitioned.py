"""Storage manager: one :class:`TableStore` per catalog table.

The paper assumes "given a logical partition OID the storage layer can
locate and retrieve the tuples belonging to that partition" (Section 2.1);
:meth:`StorageManager.scan_leaf` is exactly that contract, resolving a leaf
OID to its owning table's store.
"""

from __future__ import annotations

import time
from typing import Iterator, Sequence

from ..catalog import Catalog, TableDescriptor
from ..errors import CatalogError
from ..resilience.health import SegmentHealth
from .table import TableStore


class StorageManager:
    """All table stores for one database instance.

    The manager also owns the instance's :class:`SegmentHealth`: every
    registered table's reads consult it, so a single failover flips all
    tables of the down segment to their mirror copies at once.
    """

    def __init__(
        self,
        catalog: Catalog,
        num_segments: int,
        health: SegmentHealth | None = None,
    ):
        self.catalog = catalog
        self.num_segments = num_segments
        self.health = health if health is not None else SegmentHealth(num_segments)
        self._stores: dict[int, TableStore] = {}
        #: mutation subscribers ``fn(root_oid, leaf_oids | None)`` — every
        #: table's writes fan out here (the cache layer's invalidation feed)
        self._mutation_listeners: list = []
        #: simulated per-read I/O latency in seconds (0.0 = off).  Each
        #: ``scan_table``/``scan_leaf`` call sleeps this long before its
        #: first row — modelling the seek a real segment pays per
        #: partition file.  The sleep releases the GIL, so it is also what
        #: the parallel scheduler genuinely overlaps across segment worker
        #: threads (the fig19 benchmark's speedup source).
        self.io_latency_s = 0.0

    def register(self, descriptor: TableDescriptor) -> TableStore:
        if descriptor.oid in self._stores:
            raise CatalogError(
                f"storage for table {descriptor.name!r} already exists"
            )
        store = TableStore(descriptor, self.num_segments, health=self.health)
        store.on_mutation = self._notify_mutation
        self._stores[descriptor.oid] = store
        return store

    def unregister(self, descriptor: TableDescriptor) -> None:
        self._stores.pop(descriptor.oid, None)
        # dropping a table is a whole-table mutation for subscribers
        self._notify_mutation(descriptor.oid, None)

    def add_mutation_listener(self, listener) -> None:
        """Subscribe ``fn(root_oid, leaf_oids | None)`` to every write on
        every registered table (``leaf_oids=None`` = whole table)."""
        self._mutation_listeners.append(listener)

    def _notify_mutation(self, root_oid: int, leaf_oids) -> None:
        for listener in self._mutation_listeners:
            listener(root_oid, leaf_oids)

    def store(self, root_oid: int) -> TableStore:
        try:
            return self._stores[root_oid]
        except KeyError:
            raise CatalogError(f"no storage for OID {root_oid}") from None

    def store_by_name(self, name: str) -> TableStore:
        return self.store(self.catalog.table(name).oid)

    def scan_leaf(self, segment: int, leaf_oid: int) -> Iterator[tuple]:
        """Scan one leaf partition on one segment, addressed purely by OID."""
        owner = self.catalog.owner_of_leaf(leaf_oid)
        inner = self.store(owner.oid).scan_segment(segment, [leaf_oid])
        if self.io_latency_s > 0:
            return self._delayed(inner)
        return inner

    def scan_table(
        self, segment: int, root_oid: int, oids: Sequence[int] | None = None
    ) -> Iterator[tuple]:
        inner = self.store(root_oid).scan_segment(segment, oids)
        if self.io_latency_s > 0:
            return self._delayed(inner)
        return inner

    def _delayed(self, inner: Iterator[tuple]) -> Iterator[tuple]:
        """Pay the simulated I/O latency lazily, on the consumer's first
        ``next()`` — i.e. on the worker thread that actually runs the
        scan, not on the thread that built the iterator."""
        time.sleep(self.io_latency_s)
        yield from inner
