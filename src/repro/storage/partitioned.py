"""Storage manager: one :class:`TableStore` per catalog table.

The paper assumes "given a logical partition OID the storage layer can
locate and retrieve the tuples belonging to that partition" (Section 2.1);
:meth:`StorageManager.scan_leaf` is exactly that contract, resolving a leaf
OID to its owning table's store.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, Sequence

from ..catalog import Catalog, TableDescriptor
from ..errors import CatalogError
from ..resilience.faults import RECOVERY_REPLAY
from ..resilience.health import PRIMARY, SegmentHealth
from .table import TableStore


class StorageManager:
    """All table stores for one database instance.

    The manager also owns the instance's :class:`SegmentHealth`: every
    registered table's reads consult it, so a single failover flips all
    tables of the down segment to their mirror copies at once.  All
    mutations across all tables serialize on :attr:`write_lock`, which
    the health resync path and the durability manager's checkpoints also
    hold — a resync or snapshot never races a write.

    With no durability manager attached, a copy that missed writes while
    down rejoins through :meth:`_full_copy_resync`: its buckets are
    rebuilt wholesale from the surviving copy (the WAL-less equivalent
    of Greenplum's full mirror recovery).  ``attach_durability`` swaps
    that for exact WAL replay.
    """

    def __init__(
        self,
        catalog: Catalog,
        num_segments: int,
        health: SegmentHealth | None = None,
    ):
        self.catalog = catalog
        self.num_segments = num_segments
        self.health = health if health is not None else SegmentHealth(num_segments)
        #: one lock for every mutation on every table of this instance
        self.write_lock = threading.RLock()
        self.health.write_lock = self.write_lock
        self.health.resync_handler = self._full_copy_resync
        #: the instance's FaultInjector, propagated to every store for the
        #: mutation-path injection points (set by the engine)
        self.faults = None
        #: the instance's DurabilityManager (None = volatile storage)
        self.durability = None
        self._stores: dict[int, TableStore] = {}
        #: mutation subscribers ``fn(root_oid, leaf_oids | None)`` — every
        #: table's writes fan out here (the cache layer's invalidation feed)
        self._mutation_listeners: list = []
        #: simulated per-read I/O latency in seconds (0.0 = off).  Each
        #: ``scan_table``/``scan_leaf`` call sleeps this long before its
        #: first row — modelling the seek a real segment pays per
        #: partition file.  The sleep releases the GIL, so it is also what
        #: the parallel scheduler genuinely overlaps across segment worker
        #: threads (the fig19 benchmark's speedup source).
        self.io_latency_s = 0.0

    def register(self, descriptor: TableDescriptor) -> TableStore:
        if descriptor.oid in self._stores:
            raise CatalogError(
                f"storage for table {descriptor.name!r} already exists"
            )
        store = TableStore(
            descriptor,
            self.num_segments,
            health=self.health,
            write_lock=self.write_lock,
        )
        store.on_mutation = self._notify_mutation
        store.faults = self.faults
        store.durability = self.durability
        self._stores[descriptor.oid] = store
        return store

    def unregister(self, descriptor: TableDescriptor) -> None:
        self._stores.pop(descriptor.oid, None)
        # dropping a table is a whole-table mutation for subscribers
        self._notify_mutation(descriptor.oid, None)

    def set_faults(self, injector) -> None:
        """Wire the instance's fault injector into every store (existing
        and future) for the ``insert_row``/``delete_rows`` points."""
        self.faults = injector
        for store in self._stores.values():
            store.faults = injector

    def attach_durability(self, manager) -> None:
        """Wire a :class:`~repro.durability.DurabilityManager` in: stores
        log through it, health stamps failovers with its LSN and resyncs
        by exact WAL replay instead of full copy."""
        self.durability = manager
        manager.storage = self
        manager.health = self.health
        self.health.resync_handler = manager.resync_replay
        self.health.lsn_provider = manager.current_lsn
        for store in self._stores.values():
            store.durability = manager

    def _full_copy_resync(self, segment: int, copy: str, lsns) -> None:
        """WAL-less resync: rebuild ``copy`` of ``segment`` from the
        surviving copy across every table.  Runs under the write lock
        (the health recover path holds it)."""
        with self.write_lock:
            if self.faults is not None and self.faults.active:
                self.faults.maybe_fire(RECOVERY_REPLAY, segment)
            for store in self._stores.values():
                source = (
                    store.mirror_buckets(segment)
                    if copy == PRIMARY
                    else store.primary_buckets(segment)
                )
                rebuilt = {oid: list(rows) for oid, rows in source.items()}
                if copy == PRIMARY:
                    store._rows[segment] = rebuilt
                else:
                    store._mirror[segment] = rebuilt

    def add_mutation_listener(self, listener) -> None:
        """Subscribe ``fn(root_oid, leaf_oids | None)`` to every write on
        every registered table (``leaf_oids=None`` = whole table)."""
        self._mutation_listeners.append(listener)

    def _notify_mutation(self, root_oid: int, leaf_oids) -> None:
        for listener in self._mutation_listeners:
            listener(root_oid, leaf_oids)

    def store(self, root_oid: int) -> TableStore:
        try:
            return self._stores[root_oid]
        except KeyError:
            raise CatalogError(f"no storage for OID {root_oid}") from None

    def store_by_name(self, name: str) -> TableStore:
        return self.store(self.catalog.table(name).oid)

    def stores(self) -> Iterator[TableStore]:
        """Every registered store (checkpoint snapshots iterate this)."""
        return iter(self._stores.values())

    def scan_leaf(self, segment: int, leaf_oid: int) -> Iterator[tuple]:
        """Scan one leaf partition on one segment, addressed purely by OID."""
        owner = self.catalog.owner_of_leaf(leaf_oid)
        inner = self.store(owner.oid).scan_segment(segment, [leaf_oid])
        if self.io_latency_s > 0:
            return self._delayed(inner)
        return inner

    def scan_table(
        self, segment: int, root_oid: int, oids: Sequence[int] | None = None
    ) -> Iterator[tuple]:
        inner = self.store(root_oid).scan_segment(segment, oids)
        if self.io_latency_s > 0:
            return self._delayed(inner)
        return inner

    def scan_table_batches(
        self,
        segment: int,
        root_oid: int,
        oids: Sequence[int] | None = None,
        batch_size: int = 1024,
    ) -> Iterator[list[tuple]]:
        """Batched variant of :meth:`scan_table`: row batches sliced
        straight out of the heap lists.  The simulated I/O latency is
        still one sleep per scan call, same as the row path."""
        inner = self.store(root_oid).scan_segment_batches(
            segment, oids, batch_size
        )
        if self.io_latency_s > 0:
            return self._delayed(inner)
        return inner

    def _delayed(self, inner: Iterator[tuple]) -> Iterator[tuple]:
        """Pay the simulated I/O latency lazily, on the consumer's first
        ``next()`` — i.e. on the worker thread that actually runs the
        scan, not on the thread that built the iterator."""
        time.sleep(self.io_latency_s)
        yield from inner
