"""Hash distribution of rows across MPP segments.

A hashed-distributed table places each row on segment
``stable_hash(distribution_value) % num_segments``.  The hash must be
deterministic across processes (unlike Python's salted ``hash``) so that
test runs and benchmark runs are reproducible; we hash a canonical byte
rendering of the value with CRC-32.
"""

from __future__ import annotations

import datetime
import zlib
from typing import Any


def stable_hash(value: Any) -> int:
    """A deterministic 32-bit hash of a SQL value.

    NULLs hash to 0 (they all land on segment 0, as in Greenplum's legacy
    behaviour for nullable distribution keys).
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        payload = b"b1" if value else b"b0"
    elif isinstance(value, int):
        payload = b"i" + str(value).encode()
    elif isinstance(value, float):
        if value.is_integer():
            # Ensure 2.0 and 2 co-locate, as SQL equality would equate them.
            payload = b"i" + str(int(value)).encode()
        else:
            payload = b"f" + repr(value).encode()
    elif isinstance(value, str):
        payload = b"s" + value.encode("utf-8")
    elif isinstance(value, datetime.date):
        payload = b"d" + value.isoformat().encode()
    else:
        payload = b"o" + repr(value).encode()
    return zlib.crc32(payload)


def segment_for(value: Any, num_segments: int) -> int:
    """The segment a row with this distribution-key value belongs to."""
    if num_segments <= 0:
        raise ValueError("num_segments must be positive")
    return stable_hash(value) % num_segments
