"""In-memory heap storage for one table across all segments.

A :class:`TableStore` holds the rows of one catalog table.  Storage is
addressed two ways, mirroring the engine's needs:

* by **segment** — each segment only ever scans its local rows (Motion
  operators move data between segments at query time);
* by **leaf partition OID** — a DynamicScan retrieves exactly the leaves
  whose OIDs its PartitionSelector produced.

For an unpartitioned table all rows live under the root OID.  Replicated
tables store a full copy of every row on every segment.

Every primary segment's buckets are synchronously replicated to a
**mirror** copy.  When a :class:`~repro.resilience.SegmentHealth` object
is attached (the :class:`~repro.storage.partitioned.StorageManager` does
this on registration) and marks a primary down, reads for that segment
are served from the mirror; a double fault raises
:class:`~repro.errors.SegmentFailure`.

Writes are health-gated the same way: a down copy is *skipped* (the
survivor still takes the write) and the skipped mutation is reported to
health as missed, so the copy cannot rejoin until a resync replays it —
see :meth:`SegmentHealth.recover`.  All mutations run under the
storage-wide ``write_lock`` and, when a
:class:`~repro.durability.DurabilityManager` is attached, append WAL
records through a per-statement :class:`WalTransaction` committed in the
same critical section.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Sequence

from ..catalog import DistributionPolicy, TableDescriptor
from ..errors import PartitionError
from ..resilience.faults import DELETE_ROWS, INSERT_ROW
from ..resilience.health import MIRROR, PRIMARY, SegmentHealth
from .distribution import segment_for


class TableStore:
    """Rows of one table, bucketed by (segment, leaf OID), with a mirror
    copy per segment."""

    def __init__(
        self,
        descriptor: TableDescriptor,
        num_segments: int,
        health: SegmentHealth | None = None,
        write_lock: "threading.RLock | None" = None,
    ):
        if num_segments <= 0:
            raise ValueError("num_segments must be positive")
        self.descriptor = descriptor
        self.num_segments = num_segments
        self.health = health
        #: serializes all mutations; the StorageManager shares one lock
        #: across every store (and with SegmentHealth's resync path)
        self.write_lock = write_lock if write_lock is not None else threading.RLock()
        #: the instance's DurabilityManager (None = nothing is logged)
        self.durability = None
        #: the instance's FaultInjector for the mutation-path points
        #: ``insert_row`` / ``delete_rows`` (None = no injection)
        self.faults = None
        # _rows[segment][leaf_oid] -> list of row tuples (primary copies)
        self._rows: list[dict[int, list[tuple]]] = [
            {} for _ in range(num_segments)
        ]
        # synchronously replicated mirror copy of each primary's buckets
        self._mirror: list[dict[int, list[tuple]]] = [
            {} for _ in range(num_segments)
        ]
        #: mutation hook ``fn(root_oid, leaf_oids | None)`` — set by the
        #: StorageManager; fires after every write with the touched leaf
        #: OIDs (``None`` = whole table: truncate, unpartitioned target).
        #: The cache layer's partition-scoped invalidation hangs off this.
        self.on_mutation = None

    # -- writes -----------------------------------------------------------

    def insert(self, row: Sequence) -> None:
        """Validate, route (``f_T``) and distribute one row.

        Raises :class:`PartitionError` when the row maps to the invalid
        partition ⊥ — no partition accepts its key values.
        """
        with self.write_lock:
            txn = self._begin()
            try:
                oid = self._insert_row(row, txn)
            finally:
                self._commit(txn)
        self._notify(frozenset((oid,)) if self.descriptor.is_partitioned else None)

    def insert_many(self, rows: Iterable[Sequence]) -> int:
        """Bulk insert, batching the mutation notification: one event
        carrying every touched leaf, not one per row."""
        count = 0
        touched: set[int] = set()
        partitioned = self.descriptor.is_partitioned
        with self.write_lock:
            txn = self._begin()
            try:
                for row in rows:
                    touched.add(self._insert_row(row, txn))
                    count += 1
            finally:
                # the WAL commit covers exactly the applied prefix: a
                # mid-batch validation failure leaves rows 0..k applied in
                # memory, and recovery must reproduce the same state
                self._commit(txn)
                if count:
                    self._notify(frozenset(touched) if partitioned else None)
        return count

    def _begin(self):
        if self.durability is None:
            return None
        return self.durability.begin(self.descriptor.oid)

    def _commit(self, txn) -> None:
        if txn is not None:
            self.durability.commit(txn)

    def _writable_copies(self, segment: int) -> tuple[bool, bool]:
        if self.health is None:
            return True, True
        return self.health.writable_copies(segment)

    def _record_missed(self, segment: int, primary: bool, mirror: bool) -> None:
        """Without a WAL there are no LSNs to track, so a skipped copy is
        marked stale with an opaque token (full-copy resync on rejoin).
        With a WAL, the transaction commit records the exact LSNs."""
        if self.durability is not None or self.health is None:
            return
        if not primary:
            self.health.record_missed(segment, PRIMARY)
        if not mirror:
            self.health.record_missed(segment, MIRROR)

    def _insert_row(self, row: Sequence, txn=None) -> int:
        desc = self.descriptor
        validated = desc.schema.validate_row(row)
        if desc.is_partitioned:
            leaf = desc.route_row(validated)
            if leaf is None:
                raise PartitionError(
                    f"row {validated!r} maps to the invalid partition of "
                    f"table {desc.name!r}"
                )
            oid = desc.leaf_oid(leaf)
        else:
            oid = desc.oid
        for seg in self._target_segments(validated):
            if self.faults is not None and self.faults.active:
                self.faults.maybe_fire(INSERT_ROW, seg)
            primary, mirror = self._writable_copies(seg)
            if primary:
                self._rows[seg].setdefault(oid, []).append(validated)
            if mirror:
                self._mirror[seg].setdefault(oid, []).append(validated)
            if txn is not None:
                txn.add_insert(seg, oid, validated, primary, mirror)
            else:
                self._record_missed(seg, primary, mirror)
        return oid

    def _notify(self, leaf_oids: frozenset | None) -> None:
        if self.on_mutation is not None:
            self.on_mutation(self.descriptor.oid, leaf_oids)

    def _target_segments(self, row: tuple) -> range | list[int]:
        dist = self.descriptor.distribution
        if dist.kind == DistributionPolicy.REPLICATED:
            return range(self.num_segments)
        col_idx = self.descriptor.schema.column_index(dist.column)  # type: ignore[arg-type]
        return [segment_for(row[col_idx], self.num_segments)]

    def truncate(self) -> None:
        with self.write_lock:
            txn = self._begin()
            try:
                for seg in range(self.num_segments):
                    primary, mirror = self._writable_copies(seg)
                    if primary:
                        self._rows[seg].clear()
                    if mirror:
                        self._mirror[seg].clear()
                    if txn is not None:
                        txn.add_truncate(seg, primary, mirror)
                    else:
                        self._record_missed(seg, primary, mirror)
            finally:
                self._commit(txn)
        self._notify(None)

    def delete_from_leaf(self, segment: int, oid: int, rows: list[tuple]) -> None:
        """Remove specific rows (used by UPDATE's delete-then-insert)."""
        with self.write_lock:
            if self.faults is not None and self.faults.active:
                self.faults.maybe_fire(DELETE_ROWS, segment)
            txn = self._begin()
            try:
                primary, mirror = self._writable_copies(segment)
                for copy, writable in (
                    (self._rows, primary),
                    (self._mirror, mirror),
                ):
                    if not writable:
                        continue
                    bucket = copy[segment].get(oid)
                    if not bucket:
                        continue
                    for row in rows:
                        bucket.remove(row)
                if txn is not None:
                    txn.add_delete(segment, oid, rows, primary, mirror)
                else:
                    self._record_missed(segment, primary, mirror)
            finally:
                self._commit(txn)
        self._notify(
            frozenset((oid,)) if self.descriptor.is_partitioned else None
        )

    # -- recovery back door --------------------------------------------------

    def load_bucket(self, segment: int, oid: int, rows: list[tuple]) -> None:
        """Install one bucket into *both* copies, bypassing health gates,
        logging and notifications — the checkpoint-restore path (each copy
        gets its own list object)."""
        self._rows[segment][oid] = list(rows)
        self._mirror[segment][oid] = list(rows)

    # -- reads --------------------------------------------------------------

    def _segment_buckets(self, segment: int) -> dict[int, list[tuple]]:
        """The readable copy of one segment's buckets: primary while up,
        mirror after a failover (or during resync), and
        :class:`SegmentFailure` on double fault."""
        health = self.health
        if health is not None and health.require_readable(segment):
            health.record_mirror_read(segment)
            return self._mirror[segment]
        return self._rows[segment]

    def primary_buckets(self, segment: int) -> dict[int, list[tuple]]:
        """Direct view of one segment's primary copy (checkpoint, resync,
        tests) — no health gating."""
        return self._rows[segment]

    def mirror_buckets(self, segment: int) -> dict[int, list[tuple]]:
        """Direct view of one segment's mirror copy (tests, resync checks)."""
        return self._mirror[segment]

    def scan_segment(self, segment: int, oids: Sequence[int] | None = None) -> Iterator[tuple]:
        """Rows stored on ``segment``, restricted to the given leaf OIDs.

        ``oids=None`` scans everything on the segment (root scan)."""
        buckets = self._segment_buckets(segment)
        if oids is None:
            keys: Iterable[int] = sorted(buckets)
        else:
            keys = oids
        for oid in keys:
            yield from buckets.get(oid, ())

    def scan_segment_batches(
        self,
        segment: int,
        oids: Sequence[int] | None = None,
        batch_size: int = 1024,
    ) -> Iterator[list[tuple]]:
        """Like :meth:`scan_segment`, but yields row batches sliced
        straight out of the heap lists — no per-row Python calls.

        Batches never span leaf buckets, so a batch at a partition
        boundary may be shorter than ``batch_size``; the concatenation of
        all batches is exactly the :meth:`scan_segment` row order.
        """
        buckets = self._segment_buckets(segment)
        if oids is None:
            keys: Iterable[int] = sorted(buckets)
        else:
            keys = oids
        for oid in keys:
            bucket = buckets.get(oid)
            if not bucket:
                continue
            for start in range(0, len(bucket), batch_size):
                yield bucket[start : start + batch_size]

    def scan_all(self, oids: Sequence[int] | None = None) -> Iterator[tuple]:
        """Rows from every segment (for reference evaluation in tests).

        Replicated tables would return duplicates across segments, so they
        are read from segment 0 only.
        """
        if self.descriptor.distribution.kind == DistributionPolicy.REPLICATED:
            yield from self.scan_segment(0, oids)
            return
        for seg in range(self.num_segments):
            yield from self.scan_segment(seg, oids)

    def leaf_row_count(self, oid: int) -> int:
        if self.descriptor.distribution.kind == DistributionPolicy.REPLICATED:
            return len(self._rows[0].get(oid, ()))
        return sum(len(seg.get(oid, ())) for seg in self._rows)

    def row_count(self) -> int:
        if self.descriptor.distribution.kind == DistributionPolicy.REPLICATED:
            return sum(len(rows) for rows in self._rows[0].values())
        return sum(
            len(rows) for seg in self._rows for rows in seg.values()
        )

    def segment_row_count(self, segment: int) -> int:
        return sum(len(rows) for rows in self._rows[segment].values())
