"""JSON codecs for durable state: cell values, rows, table descriptors.

Everything the WAL and checkpoints persist must survive a JSON round
trip and decode back into the exact runtime objects — most importantly
``datetime.date`` partition bounds and row cells, which JSON has no
native type for.  Two encodings are used:

* **row cells** are stored as plain JSON values, with dates flattened to
  ISO strings; decoding routes every row back through
  ``TableSchema.validate_row``, whose DATE coercion restores the
  ``datetime.date`` objects (and re-checks types while at it);
* **partition-constraint bounds** have no schema to validate against, so
  dates carry an explicit ``{"$date": "YYYY-MM-DD"}`` tag.

Descriptors round-trip completely — name, OID, schema, distribution,
partition scheme (every interval of every slot) and the leaf-OID map —
so recovery reproduces the catalog byte for byte, including OIDs.
"""

from __future__ import annotations

import datetime
from typing import Any

from ..catalog.catalog import DistributionPolicy, TableDescriptor
from ..catalog.constraints import Interval, IntervalSet
from ..catalog.partition import PartitionLevel, PartitionScheme, PartitionSlot
from ..catalog.schema import TableSchema
from ..types import DataType, TypeKind

# -- cells ------------------------------------------------------------------


def encode_cell(value: Any) -> Any:
    """One row cell as a JSON-native value (dates become ISO strings)."""
    if isinstance(value, datetime.date):
        return value.isoformat()
    return value


def encode_row(row: tuple) -> list:
    return [encode_cell(value) for value in row]


# -- tagged bounds (partition constraints) ----------------------------------


def encode_bound(value: Any) -> Any:
    """A partition-interval bound; dates get a ``$date`` tag because no
    schema is available to coerce them back on decode."""
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return value


def decode_bound(value: Any) -> Any:
    if isinstance(value, dict) and "$date" in value:
        return datetime.date.fromisoformat(value["$date"])
    return value


def encode_interval_set(interval_set: IntervalSet) -> list:
    return [
        [
            encode_bound(iv.lo),
            encode_bound(iv.hi),
            iv.lo_inclusive,
            iv.hi_inclusive,
        ]
        for iv in interval_set.intervals
    ]


def decode_interval_set(data: list) -> IntervalSet:
    return IntervalSet.of(
        *[
            Interval(decode_bound(lo), decode_bound(hi), lo_inc, hi_inc)
            for lo, hi, lo_inc, hi_inc in data
        ]
    )


# -- descriptors ------------------------------------------------------------


def encode_descriptor(desc: TableDescriptor) -> dict:
    """A :class:`TableDescriptor` as a JSON-native dict, OIDs included."""
    data: dict[str, Any] = {
        "oid": desc.oid,
        "name": desc.name,
        "columns": [
            [col.name, col.data_type.kind.value] for col in desc.schema
        ],
        "distribution": {
            "kind": desc.distribution.kind,
            "column": desc.distribution.column,
        },
        "partition": None,
        "leaf_oids": None,
    }
    if desc.partition_scheme is not None:
        data["partition"] = {
            "levels": [
                {
                    "key": level.key,
                    "slots": [
                        {
                            "name": slot.name,
                            "intervals": encode_interval_set(slot.constraint),
                        }
                        for slot in level.slots
                    ],
                }
                for level in desc.partition_scheme.levels
            ]
        }
        data["leaf_oids"] = [
            [list(leaf), oid] for leaf, oid in desc._leaf_oids.items()
        ]
    return data


def decode_descriptor(data: dict) -> TableDescriptor:
    schema = TableSchema.of(
        *[
            (name, DataType(TypeKind(kind)))
            for name, kind in data["columns"]
        ]
    )
    distribution = DistributionPolicy(
        data["distribution"]["kind"], data["distribution"]["column"]
    )
    scheme = None
    leaf_oids = None
    if data["partition"] is not None:
        scheme = PartitionScheme(
            [
                PartitionLevel(
                    level["key"],
                    [
                        PartitionSlot(
                            slot["name"],
                            decode_interval_set(slot["intervals"]),
                        )
                        for slot in level["slots"]
                    ],
                )
                for level in data["partition"]["levels"]
            ]
        )
        leaf_oids = {
            tuple(leaf): oid for leaf, oid in data["leaf_oids"]
        }
    return TableDescriptor(
        data["oid"], data["name"], schema, distribution, scheme, leaf_oids
    )
