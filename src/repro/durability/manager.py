"""The durability manager: WAL, checkpoints, restart recovery, resync.

One :class:`DurabilityManager` owns a database instance's durable state
under ``data_dir``::

    data_dir/
      wal/
        seg0.wal .. segN.wal   per-segment data records (insert/delete/
                               truncate), JSONL, CRC-stamped, LSN-ordered
        catalog.wal            DDL records (create_table / drop_table)
        commit.wal             commit markers: {"xid", "lsns": [...]}
      checkpoint/              last complete snapshot (manifest.json +
                               one seg<N>.json per segment)
      checkpoint.old/          previous snapshot, kept during the swap

**Logging.**  The storage layer applies a statement's mutations under
the storage-wide write lock, buffering one WAL record per touched
(segment, copies) group in a :class:`WalTransaction`; :meth:`commit`
then assigns LSNs, appends the data records to their per-segment files,
appends one commit marker, and fsyncs when ``wal_sync == 'sync'``.
Recovery replays only LSNs named by a valid commit marker, so a crash
mid-statement can never resurrect half a statement — the torn tail of
any file is dropped wholesale.

**Missed-write tracking.**  A record whose target segment had a copy
down is still logged (the survivor applied it); its LSN is reported to
:class:`~repro.resilience.SegmentHealth` as *missed* by that copy, and
:meth:`resync_replay` — installed as the health resync handler — later
replays exactly those LSNs from the segment's WAL into the rejoining
copy.  This is the online counterpart of restart recovery.

**Checkpoints.**  :meth:`checkpoint` snapshots every table's buckets
(from whichever copy is fully caught up) plus the encoded catalog into
``checkpoint.tmp``, atomically swaps it in (``checkpoint`` →
``checkpoint.old`` → remove), and truncates the WAL — unless any copy
is down or behind, in which case the log is retained for resync.

**Recovery.**  :meth:`recover_into` rebuilds catalog + storage from the
newest loadable checkpoint, then replays the committed WAL tail in LSN
order into both copies of every segment.  Torn tails are physically
truncated before the files reopen for append.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING

from ..errors import DurabilityError
from ..resilience.faults import (
    CHECKPOINT_WRITE,
    RECOVERY_REPLAY,
    WAL_APPEND,
    WAL_FSYNC,
)
from ..resilience.health import MIRROR, PRIMARY
from .serialize import decode_descriptor, encode_descriptor, encode_row
from .wal import WalFile, scan

if TYPE_CHECKING:
    from ..catalog import Catalog
    from ..storage import StorageManager

SYNC = "sync"
ASYNC = "async"

#: pseudo-segment label for the shared catalog / commit logs in fault calls
SHARED_SEGMENT = -1


class WalTransaction:
    """Buffered WAL records for one statement on one table."""

    __slots__ = ("table_oid", "xid", "ops", "_insert_groups")

    def __init__(self, table_oid: int, xid: int):
        self.table_oid = table_oid
        self.xid = xid
        #: fully-formed records (minus lsn/xid), in buffer order
        self.ops: list[dict] = []
        # rows inserted into the same segment under the same copies
        # decision share one record
        self._insert_groups: dict[tuple, dict] = {}

    def add_insert(
        self,
        segment: int,
        leaf_oid: int,
        row: tuple,
        primary: bool,
        mirror: bool,
    ) -> None:
        key = (segment, primary, mirror)
        group = self._insert_groups.get(key)
        if group is None:
            group = {
                "type": "insert",
                "table": self.table_oid,
                "segment": segment,
                "rows": [],
                "copies": [primary, mirror],
            }
            self._insert_groups[key] = group
            self.ops.append(group)
        group["rows"].append([leaf_oid, encode_row(row)])

    def add_delete(
        self,
        segment: int,
        leaf_oid: int,
        rows: list[tuple],
        primary: bool,
        mirror: bool,
    ) -> None:
        self.ops.append(
            {
                "type": "delete",
                "table": self.table_oid,
                "segment": segment,
                "leaf": leaf_oid,
                "rows": [encode_row(row) for row in rows],
                "copies": [primary, mirror],
            }
        )

    def add_truncate(self, segment: int, primary: bool, mirror: bool) -> None:
        self.ops.append(
            {
                "type": "truncate",
                "table": self.table_oid,
                "segment": segment,
                "copies": [primary, mirror],
            }
        )


class DurabilityManager:
    """WAL + checkpoint + recovery for one database instance."""

    def __init__(
        self,
        data_dir: str | Path,
        num_segments: int,
        wal_sync: str = SYNC,
        faults=None,
    ):
        if wal_sync not in (SYNC, ASYNC):
            raise DurabilityError(
                f"wal_sync must be {SYNC!r} or {ASYNC!r}, got {wal_sync!r}"
            )
        self.data_dir = Path(data_dir)
        self.num_segments = num_segments
        self.wal_sync = wal_sync
        self.faults = faults
        self.health = None  # set by StorageManager.attach_durability
        self.storage: "StorageManager | None" = None
        #: allocates LSNs/xids; commits already run under the storage
        #: write lock, but checkpoint counters and the background thread
        #: need their own protection
        self._lock = threading.RLock()
        self._next_lsn = 1
        self._next_xid = 1
        # -- durable files ------------------------------------------------
        self.wal_dir = self.data_dir / "wal"
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self._segment_wals: list[WalFile] = []
        self._catalog_wal: WalFile | None = None
        self._commit_wal: WalFile | None = None
        # -- counters (the metrics "durability" section) -------------------
        self.wal_records = 0
        self.wal_bytes = 0
        self.wal_fsyncs = 0
        self.checkpoints = 0
        self.last_checkpoint_seconds = 0.0
        self.checkpoint_seconds_total = 0.0
        self.last_checkpoint_bytes = 0
        self.last_checkpoint_lsn = 0
        self.wal_truncations = 0
        self.recovery_replayed_records = 0
        self.recovery_checkpoint_lsn = 0
        self.resync_replayed_records = 0
        # -- background checkpointer ---------------------------------------
        self._ticker: threading.Thread | None = None
        self._stop = threading.Event()

    # -- paths --------------------------------------------------------------

    def _segment_wal_path(self, segment: int) -> Path:
        return self.wal_dir / f"seg{segment}.wal"

    @property
    def _catalog_wal_path(self) -> Path:
        return self.wal_dir / "catalog.wal"

    @property
    def _commit_wal_path(self) -> Path:
        return self.wal_dir / "commit.wal"

    @property
    def checkpoint_dir(self) -> Path:
        return self.data_dir / "checkpoint"

    # -- lifecycle ----------------------------------------------------------

    def current_lsn(self) -> int:
        """The LSN of the most recently assigned record (health stamps
        failover events with this)."""
        with self._lock:
            return self._next_lsn - 1

    def recover_into(self, catalog: "Catalog", storage: "StorageManager") -> None:
        """Rebuild ``catalog`` + ``storage`` from checkpoint + WAL tail,
        then open the logs for append (torn tails truncated)."""
        self.storage = storage
        self.health = storage.health
        checkpoint_lsn = self._load_checkpoint(catalog, storage)
        self.recovery_checkpoint_lsn = checkpoint_lsn

        # open every log, truncating torn tails, collecting valid records
        self._commit_wal, commit_records = WalFile.open(self._commit_wal_path)
        self._catalog_wal, ddl_records = WalFile.open(self._catalog_wal_path)
        data_records: list[dict] = []
        self._segment_wals = []
        for segment in range(self.num_segments):
            wal, records = WalFile.open(self._segment_wal_path(segment))
            self._segment_wals.append(wal)
            data_records.extend(records)

        committed: set[int] = set()
        max_xid = 0
        for record in commit_records:
            committed.update(record["lsns"])
            max_xid = max(max_xid, record["xid"])
        tail = sorted(
            (
                r
                for r in ddl_records + data_records
                if r["lsn"] > checkpoint_lsn and r["lsn"] in committed
            ),
            key=lambda r: r["lsn"],
        )
        for record in tail:
            self._fire(RECOVERY_REPLAY, record.get("segment", SHARED_SEGMENT))
            self._replay(record, catalog, storage)
            self.recovery_replayed_records += 1

        seen = [r["lsn"] for r in ddl_records + data_records]
        with self._lock:
            self._next_lsn = max([checkpoint_lsn] + seen) + 1
            self._next_xid = max_xid + 1

    def close(self) -> None:
        """Stop the background checkpointer and close the log files."""
        self._stop.set()
        if self._ticker is not None:
            self._ticker.join(timeout=5.0)
            self._ticker = None
        for wal in self._segment_wals:
            wal.close()
        for wal in (self._catalog_wal, self._commit_wal):
            if wal is not None:
                wal.close()

    def start_checkpointer(self, interval_s: float) -> None:
        """Checkpoint every ``interval_s`` seconds on a daemon thread."""
        if interval_s <= 0:
            raise DurabilityError("checkpoint interval must be positive")
        if self._ticker is not None:
            return

        def tick():
            while not self._stop.wait(interval_s):
                try:
                    self.checkpoint()
                except Exception:
                    # a failed background checkpoint (e.g. an injected
                    # checkpoint_write fault) must not kill the ticker;
                    # the old checkpoint + full WAL still recover
                    pass

        self._ticker = threading.Thread(
            target=tick, name="repro-checkpointer", daemon=True
        )
        self._ticker.start()

    # -- logging (called by TableStore under the storage write lock) --------

    def begin(self, table_oid: int) -> WalTransaction:
        with self._lock:
            xid = self._next_xid
            self._next_xid += 1
        return WalTransaction(table_oid, xid)

    def commit(self, txn: WalTransaction) -> None:
        """Assign LSNs, append the buffered records + a commit marker,
        fsync in ``sync`` mode, and report missed LSNs to health."""
        if not txn.ops:
            return
        with self._lock:
            synced: list[WalFile] = []
            lsns: list[int] = []
            for op in txn.ops:
                op["lsn"] = self._next_lsn
                self._next_lsn += 1
                op["xid"] = txn.xid
                lsns.append(op["lsn"])
                segment = op["segment"]
                self._fire(WAL_APPEND, segment)
                wal = self._segment_wals[segment]
                self.wal_bytes += wal.append(op)
                self.wal_records += 1
                if wal not in synced:
                    synced.append(wal)
                primary, mirror = op["copies"]
                if not primary:
                    self.health.record_missed(segment, PRIMARY, [op["lsn"]])
                if not mirror:
                    self.health.record_missed(segment, MIRROR, [op["lsn"]])
            if self.wal_sync == SYNC:
                for wal in synced:
                    self._fsync(wal)
            self._fire(WAL_APPEND, SHARED_SEGMENT)
            marker = {"type": "commit", "xid": txn.xid, "lsns": lsns}
            self.wal_bytes += self._commit_wal.append(marker)
            self.wal_records += 1
            if self.wal_sync == SYNC:
                self._fsync(self._commit_wal)

    def log_create_table(self, descriptor) -> None:
        self._log_ddl(
            {
                "type": "create_table",
                "segment": SHARED_SEGMENT,
                "table": descriptor.oid,
                "table_def": encode_descriptor(descriptor),
            }
        )

    def log_drop_table(self, descriptor) -> None:
        self._log_ddl(
            {
                "type": "drop_table",
                "segment": SHARED_SEGMENT,
                "table": descriptor.oid,
                "name": descriptor.name,
            }
        )

    def _log_ddl(self, record: dict) -> None:
        with self._lock:
            record["lsn"] = self._next_lsn
            self._next_lsn += 1
            xid = self._next_xid
            self._next_xid += 1
            record["xid"] = xid
            self._fire(WAL_APPEND, SHARED_SEGMENT)
            self.wal_bytes += self._catalog_wal.append(record)
            self.wal_records += 1
            if self.wal_sync == SYNC:
                self._fsync(self._catalog_wal)
            marker = {"type": "commit", "xid": xid, "lsns": [record["lsn"]]}
            self._fire(WAL_APPEND, SHARED_SEGMENT)
            self.wal_bytes += self._commit_wal.append(marker)
            self.wal_records += 1
            if self.wal_sync == SYNC:
                self._fsync(self._commit_wal)

    def _fsync(self, wal: WalFile) -> None:
        self._fire(WAL_FSYNC, SHARED_SEGMENT)
        wal.sync()
        self.wal_fsyncs += 1

    def _fire(self, point: str, segment: int) -> None:
        if self.faults is not None and self.faults.active:
            self.faults.maybe_fire(point, segment)

    # -- checkpoints ---------------------------------------------------------

    def checkpoint(self) -> dict:
        """Snapshot every table + the catalog, swap it in atomically, and
        truncate the WAL when every copy is caught up.  Returns a summary
        dict (lsn, bytes, duration, truncated)."""
        storage = self.storage
        if storage is None:
            raise DurabilityError("durability manager is not attached")
        start = time.perf_counter()
        with storage.write_lock:
            self._fire(CHECKPOINT_WRITE, SHARED_SEGMENT)
            with self._lock:
                checkpoint_lsn = self._next_lsn - 1
                next_xid = self._next_xid
            manifest = {
                "lsn": checkpoint_lsn,
                "next_xid": next_xid,
                "tables": [
                    encode_descriptor(d) for d in storage.catalog.tables()
                ],
            }
            segments = [
                self._snapshot_segment(storage, segment)
                for segment in range(self.num_segments)
            ]
            total_bytes = self._write_checkpoint(manifest, segments)
            truncated = self._maybe_truncate_wal()
        duration = time.perf_counter() - start
        with self._lock:
            self.checkpoints += 1
            self.last_checkpoint_seconds = duration
            self.checkpoint_seconds_total += duration
            self.last_checkpoint_bytes = total_bytes
            self.last_checkpoint_lsn = checkpoint_lsn
            if truncated:
                self.wal_truncations += 1
        return {
            "lsn": checkpoint_lsn,
            "bytes": total_bytes,
            "seconds": duration,
            "wal_truncated": truncated,
        }

    def _snapshot_segment(self, storage: "StorageManager", segment: int) -> dict:
        """One segment's buckets for every table, read from whichever copy
        is fully caught up (the survivor, when one copy is down/behind)."""
        health = storage.health
        use_mirror = (
            not health.is_up(segment)
            or bool(health.missed_lsns(segment, PRIMARY))
        )
        snapshot: dict[str, dict[str, list]] = {}
        for store in storage.stores():
            buckets = (
                store.mirror_buckets(segment)
                if use_mirror
                else store.primary_buckets(segment)
            )
            snapshot[str(store.descriptor.oid)] = {
                str(oid): [encode_row(row) for row in rows]
                for oid, rows in buckets.items()
            }
        return snapshot

    def _write_checkpoint(self, manifest: dict, segments: list[dict]) -> int:
        tmp = self.data_dir / "checkpoint.tmp"
        old = self.data_dir / "checkpoint.old"
        current = self.checkpoint_dir
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir(parents=True)
        total = 0
        for segment, snapshot in enumerate(segments):
            total += self._write_json(tmp / f"seg{segment}.json", snapshot)
        # the manifest goes last: a checkpoint without one is unreadable,
        # so a crash mid-write can never present a partial snapshot
        total += self._write_json(tmp / "manifest.json", manifest)
        # atomic swap: current -> old, tmp -> current, drop old
        if old.exists():
            shutil.rmtree(old)
        if current.exists():
            current.rename(old)
        tmp.rename(current)
        if old.exists():
            shutil.rmtree(old)
        return total

    @staticmethod
    def _write_json(path: Path, payload: dict) -> int:
        body = json.dumps(payload, separators=(",", ":")).encode()
        with open(path, "wb") as fh:
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        return len(body)

    def _maybe_truncate_wal(self) -> bool:
        """Reset every log file — only when no copy is down or behind
        (their missed records live in the WAL until resync replays them)."""
        health = self.health
        for segment in range(self.num_segments):
            if not health.is_up(segment) or not health.mirror_is_up(segment):
                return False
            if health.missed_lsns(segment, PRIMARY) or health.missed_lsns(
                segment, MIRROR
            ):
                return False
        for wal in self._segment_wals + [self._catalog_wal, self._commit_wal]:
            wal.reset()
        return True

    # -- restart recovery -----------------------------------------------------

    def _load_checkpoint(
        self, catalog: "Catalog", storage: "StorageManager"
    ) -> int:
        """Restore the newest loadable snapshot; returns its LSN (0 when
        starting fresh)."""
        tmp = self.data_dir / "checkpoint.tmp"
        if tmp.exists():  # a checkpoint died mid-write; it never counted
            shutil.rmtree(tmp)
        for candidate in (self.checkpoint_dir, self.data_dir / "checkpoint.old"):
            manifest_path = candidate / "manifest.json"
            if not manifest_path.exists():
                continue
            try:
                with open(manifest_path, "rb") as fh:
                    manifest = json.load(fh)
            except ValueError:
                continue
            self._restore_checkpoint(candidate, manifest, catalog, storage)
            with self._lock:
                self._next_lsn = manifest["lsn"] + 1
                self._next_xid = manifest["next_xid"]
            return manifest["lsn"]
        return 0

    def _restore_checkpoint(
        self,
        directory: Path,
        manifest: dict,
        catalog: "Catalog",
        storage: "StorageManager",
    ) -> None:
        for table_def in manifest["tables"]:
            descriptor = decode_descriptor(table_def)
            catalog.register_descriptor(descriptor)
            storage.register(descriptor)
        for segment in range(self.num_segments):
            path = directory / f"seg{segment}.json"
            if not path.exists():
                continue
            with open(path, "rb") as fh:
                snapshot = json.load(fh)
            for oid_str, buckets in snapshot.items():
                store = storage.store(int(oid_str))
                schema = store.descriptor.schema
                for leaf_str, rows in buckets.items():
                    validated = [schema.validate_row(row) for row in rows]
                    store.load_bucket(segment, int(leaf_str), validated)

    def _replay(self, record: dict, catalog: "Catalog", storage: "StorageManager") -> None:
        kind = record["type"]
        if kind == "create_table":
            descriptor = decode_descriptor(record["table_def"])
            catalog.register_descriptor(descriptor)
            storage.register(descriptor)
            return
        if kind == "drop_table":
            if catalog.has_table(record["name"]):
                descriptor = catalog.table(record["name"])
                storage.unregister(descriptor)
                catalog.drop_table(record["name"])
            return
        try:
            store = storage.store(record["table"])
        except Exception:
            return  # the table was dropped later in the log
        self._apply_data_record(store, record, copies=(PRIMARY, MIRROR))

    @staticmethod
    def _apply_data_record(store, record: dict, copies: tuple) -> None:
        """Apply one insert/delete/truncate record to the named copies of
        its segment, bypassing logging and health gates."""
        segment = record["segment"]
        kind = record["type"]
        schema = store.descriptor.schema
        for copy in copies:
            buckets = (
                store.primary_buckets(segment)
                if copy == PRIMARY
                else store.mirror_buckets(segment)
            )
            if kind == "insert":
                for leaf_oid, row in record["rows"]:
                    buckets.setdefault(leaf_oid, []).append(
                        schema.validate_row(row)
                    )
            elif kind == "delete":
                bucket = buckets.get(record["leaf"])
                if not bucket:
                    continue
                for row in record["rows"]:
                    validated = schema.validate_row(row)
                    try:
                        bucket.remove(validated)
                    except ValueError:
                        pass  # this copy never had the row (missed insert)
            elif kind == "truncate":
                buckets.clear()

    # -- online resync (the SegmentHealth resync handler) ---------------------

    def resync_replay(self, segment: int, copy: str, lsns: list[int]) -> None:
        """Replay exactly the WAL records at ``lsns`` into ``copy`` of
        ``segment`` — called by :meth:`SegmentHealth.recover` while the
        segment is held in the ``resyncing`` state."""
        storage = self.storage
        if storage is None:
            raise DurabilityError("durability manager is not attached")
        wanted = set(lsns)
        records, _ = scan(self._segment_wal_path(segment))
        matched = sorted(
            (r for r in records if r["lsn"] in wanted), key=lambda r: r["lsn"]
        )
        if len(matched) != len(wanted):
            missing = sorted(wanted - {r["lsn"] for r in matched})
            raise DurabilityError(
                f"segment {segment}: {len(missing)} missed WAL records "
                f"not found in the log (lsns {missing[:5]}...) — was the "
                "WAL truncated while a copy was behind?"
            )
        for record in matched:
            self._fire(RECOVERY_REPLAY, segment)
            try:
                store = storage.store(record["table"])
            except Exception:
                continue  # table dropped since
            self._apply_data_record(store, record, copies=(copy,))
            self.resync_replayed_records += 1

    # -- export ---------------------------------------------------------------

    def wal_size_bytes(self) -> int:
        return sum(
            wal.size()
            for wal in self._segment_wals
            + [w for w in (self._catalog_wal, self._commit_wal) if w]
        )

    def stats_dict(self) -> dict:
        """The metrics ``"durability"`` section (schema v8)."""
        with self._lock:
            return {
                "enabled": True,
                "data_dir": str(self.data_dir),
                "wal_sync": self.wal_sync,
                "wal_records": self.wal_records,
                "wal_bytes": self.wal_bytes,
                "wal_fsyncs": self.wal_fsyncs,
                "checkpoints": self.checkpoints,
                "last_checkpoint_seconds": self.last_checkpoint_seconds,
                "checkpoint_seconds_total": self.checkpoint_seconds_total,
                "last_checkpoint_bytes": self.last_checkpoint_bytes,
                "last_checkpoint_lsn": self.last_checkpoint_lsn,
                "wal_truncations": self.wal_truncations,
                "recovery_replayed_records": self.recovery_replayed_records,
                "recovery_checkpoint_lsn": self.recovery_checkpoint_lsn,
                "resync_replayed_records": self.resync_replayed_records,
            }
