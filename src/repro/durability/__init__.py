"""Durability: per-segment write-ahead logging, checkpoints, crash
recovery, and online mirror resync.

The package gives the simulator the recovery half of Greenplum's
fault-tolerance story: PR 2's :class:`~repro.resilience.SegmentHealth`
promotes mirrors when a primary dies; this package makes the data
survive the *process* dying (``Database(data_dir=...)`` replays
checkpoint + WAL tail on restart) and makes rejoining copies catch up
on exactly the mutations they missed before they serve reads again.

See ``docs/durability.md`` for the WAL format and lifecycle.
"""

from .manager import ASYNC, SYNC, DurabilityManager, WalTransaction
from .serialize import decode_descriptor, encode_descriptor
from .wal import WalFile, scan

__all__ = [
    "ASYNC",
    "SYNC",
    "DurabilityManager",
    "WalFile",
    "WalTransaction",
    "decode_descriptor",
    "encode_descriptor",
    "scan",
]
