"""One append-only JSONL write-ahead-log file with CRC-checked records.

Each line is one JSON object carrying a ``crc`` field: the CRC-32 of the
canonical (key-sorted, compact) JSON serialization of the record *minus*
the crc itself.  Records must already be JSON-native — the manager
flattens dates before logging — so the canonical form is stable across a
round trip.

Reading is torn-tail tolerant, the crash contract a real WAL honours:

* a trailing region that does not parse (cut-off line, missing newline,
  half-written JSON, bad CRC) is a **torn tail** — the crash interrupted
  the last ``write()`` — and is silently dropped, *provided nothing
  valid follows it*;
* a bad record **followed by a valid one** cannot be produced by tearing
  an append-only file, so it raises :class:`~repro.errors.WalCorruption`
  instead of quietly losing committed history.

:meth:`WalFile.open` physically truncates the file back to the last
valid record before reopening it for append, so a recovered process
never interleaves new records with torn garbage.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path

from ..errors import WalCorruption

_CANONICAL = {"sort_keys": True, "separators": (",", ":")}


def record_crc(record: dict) -> int:
    """CRC-32 of the canonical serialization of ``record`` (sans crc)."""
    body = json.dumps(
        {k: v for k, v in record.items() if k != "crc"}, **_CANONICAL
    )
    return zlib.crc32(body.encode())


def encode_record(record: dict) -> bytes:
    """One CRC-stamped JSONL line (newline included)."""
    stamped = dict(record)
    stamped["crc"] = record_crc(record)
    return (json.dumps(stamped, **_CANONICAL) + "\n").encode()


def _try_decode(line: bytes) -> dict | None:
    """The record on ``line``, or ``None`` when it is torn/invalid."""
    if not line.endswith(b"\n"):
        return None
    try:
        record = json.loads(line)
    except ValueError:
        return None
    if not isinstance(record, dict) or "crc" not in record:
        return None
    if record_crc(record) != record["crc"]:
        return None
    return record


def scan(path: Path) -> tuple[list[dict], int]:
    """All valid records in ``path`` plus the byte offset of the valid
    prefix.  Tolerates a torn tail; raises :class:`WalCorruption` when a
    bad record is *followed* by a valid one (mid-file damage, not a
    crash)."""
    if not path.exists():
        return [], 0
    records: list[dict] = []
    good_offset = 0
    torn_at: int | None = None
    with open(path, "rb") as fh:
        offset = 0
        for line in fh:
            record = _try_decode(line)
            if record is None:
                if torn_at is None:
                    torn_at = offset
            else:
                if torn_at is not None:
                    raise WalCorruption(
                        f"{path}: valid record at byte {offset} after "
                        f"damaged record at byte {torn_at} — the log is "
                        "corrupt, not merely torn by a crash"
                    )
                records.append(record)
                good_offset = offset + len(line)
            offset += len(line)
    return records, good_offset


class WalFile:
    """Append handle over one JSONL WAL file."""

    def __init__(self, path: Path):
        self.path = Path(path)
        self._fh = None
        self.records_written = 0
        self.bytes_written = 0
        self.fsyncs = 0

    @classmethod
    def open(cls, path: Path) -> tuple["WalFile", list[dict]]:
        """Scan ``path``, truncate any torn tail, and open for append."""
        path = Path(path)
        records, good_offset = scan(path)
        if path.exists() and path.stat().st_size > good_offset:
            with open(path, "r+b") as fh:
                fh.truncate(good_offset)
        wal = cls(path)
        wal._ensure_open()
        return wal, records

    def _ensure_open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, record: dict) -> int:
        """Write one CRC-stamped record and flush to the OS (no fsync);
        returns the bytes written."""
        line = encode_record(record)
        fh = self._ensure_open()
        fh.write(line)
        fh.flush()
        self.records_written += 1
        self.bytes_written += len(line)
        return len(line)

    def sync(self) -> None:
        """fsync the file — the durability point for ``wal sync`` mode."""
        fh = self._ensure_open()
        os.fsync(fh.fileno())
        self.fsyncs += 1

    def size(self) -> int:
        return self.path.stat().st_size if self.path.exists() else 0

    def reset(self) -> None:
        """Truncate to empty (checkpoint log truncation)."""
        fh = self._ensure_open()
        fh.truncate(0)
        fh.seek(0)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
