"""Logical operator algebra.

The binder produces a tree of these operators from a SQL statement; both
optimizers consume it.  Every operator knows its output
:class:`~repro.expr.eval.RowLayout` so expressions can be checked against
scope at plan time.

Join kinds: ``inner`` and ``semi`` (the binder rewrites ``IN (subquery)``
into a semi-join, which is how the paper's Figure 4 query is planned).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..catalog import TableDescriptor
from ..expr.ast import AggCall, ColumnRef, Expression
from ..expr.eval import RowLayout

INNER, SEMI = "inner", "semi"
JOIN_KINDS = (INNER, SEMI)


class LogicalOp:
    """Base class for logical operators."""

    children: tuple["LogicalOp", ...] = ()

    def output_layout(self) -> RowLayout:
        raise NotImplementedError

    def walk(self) -> Iterator["LogicalOp"]:
        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def name(self) -> str:
        return type(self).__name__.removeprefix("Logical")

    def with_children(self, children: Sequence["LogicalOp"]) -> "LogicalOp":
        """Shallow copy with new children (used by the Memo)."""
        import copy

        clone = copy.copy(self)
        clone.children = tuple(children)
        return clone

    def describe(self) -> str:
        """One-line annotation for explain output."""
        return ""

    def explain(self, indent: int = 0) -> str:
        line = "  " * indent + self.name
        detail = self.describe()
        if detail:
            line += f" ({detail})"
        lines = [line]
        for child in self.children:
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return self.explain()


class LogicalGet(LogicalOp):
    """A base-table access, partitioned or not."""

    def __init__(self, table: TableDescriptor, alias: str):
        self.table = table
        self.alias = alias

    def output_layout(self) -> RowLayout:
        return RowLayout.for_table(self.alias, self.table.schema.column_names)

    def describe(self) -> str:
        label = self.table.name
        if self.alias != self.table.name:
            label += f" AS {self.alias}"
        if self.table.is_partitioned:
            label += f", {self.table.num_leaves} parts"
        return label


class LogicalSelect(LogicalOp):
    """Filter rows by a predicate."""

    def __init__(self, child: LogicalOp, predicate: Expression):
        self.children = (child,)
        self.predicate = predicate

    @property
    def child(self) -> LogicalOp:
        return self.children[0]

    def output_layout(self) -> RowLayout:
        return self.child.output_layout()

    def describe(self) -> str:
        return repr(self.predicate)


class LogicalProject(LogicalOp):
    """Compute output columns.  Each item is ``(expression, output name)``."""

    def __init__(
        self, child: LogicalOp, items: Sequence[tuple[Expression, str]]
    ):
        self.children = (child,)
        self.items: tuple[tuple[Expression, str], ...] = tuple(items)

    @property
    def child(self) -> LogicalOp:
        return self.children[0]

    def output_layout(self) -> RowLayout:
        return RowLayout([(None, name) for _, name in self.items])

    def describe(self) -> str:
        return ", ".join(f"{expr!r} AS {name}" for expr, name in self.items)


class LogicalJoin(LogicalOp):
    """Inner or semi join with an arbitrary predicate."""

    def __init__(
        self,
        kind: str,
        left: LogicalOp,
        right: LogicalOp,
        predicate: Expression | None,
    ):
        if kind not in JOIN_KINDS:
            raise ValueError(f"unknown join kind {kind!r}")
        self.kind = kind
        self.children = (left, right)
        self.predicate = predicate

    @property
    def left(self) -> LogicalOp:
        return self.children[0]

    @property
    def right(self) -> LogicalOp:
        return self.children[1]

    def output_layout(self) -> RowLayout:
        left_layout = self.left.output_layout()
        if self.kind == SEMI:
            return left_layout
        return left_layout.concat(self.right.output_layout())

    def describe(self) -> str:
        return f"{self.kind}, {self.predicate!r}"


class LogicalGroupBy(LogicalOp):
    """Grouped (or scalar, when ``group_keys`` is empty) aggregation."""

    def __init__(
        self,
        child: LogicalOp,
        group_keys: Sequence[ColumnRef],
        aggregates: Sequence[tuple[AggCall, str]],
    ):
        self.children = (child,)
        self.group_keys: tuple[ColumnRef, ...] = tuple(group_keys)
        self.aggregates: tuple[tuple[AggCall, str], ...] = tuple(aggregates)

    @property
    def child(self) -> LogicalOp:
        return self.children[0]

    def output_layout(self) -> RowLayout:
        slots: list[tuple[str | None, str]] = [
            (key.qualifier, key.name) for key in self.group_keys
        ]
        slots.extend((None, name) for _, name in self.aggregates)
        return RowLayout(slots)

    def describe(self) -> str:
        keys = ", ".join(repr(k) for k in self.group_keys)
        aggs = ", ".join(f"{agg!r} AS {name}" for agg, name in self.aggregates)
        return f"keys=[{keys}], aggs=[{aggs}]"


class LogicalSort(LogicalOp):
    """Order rows by ``(expression, ascending)`` keys."""

    def __init__(
        self, child: LogicalOp, keys: Sequence[tuple[Expression, bool]]
    ):
        self.children = (child,)
        self.keys: tuple[tuple[Expression, bool], ...] = tuple(keys)

    @property
    def child(self) -> LogicalOp:
        return self.children[0]

    def output_layout(self) -> RowLayout:
        return self.child.output_layout()

    def describe(self) -> str:
        return ", ".join(
            f"{expr!r} {'ASC' if asc else 'DESC'}" for expr, asc in self.keys
        )


class LogicalLimit(LogicalOp):
    """Keep the first ``count`` rows."""

    def __init__(self, child: LogicalOp, count: int):
        self.children = (child,)
        self.count = count

    @property
    def child(self) -> LogicalOp:
        return self.children[0]

    def output_layout(self) -> RowLayout:
        return self.child.output_layout()

    def describe(self) -> str:
        return str(self.count)


class LogicalUpdate(LogicalOp):
    """``UPDATE target SET col = expr, ... [FROM ...] WHERE ...``.

    The child produces the joined/filtered rows; the target table's columns
    must be visible in the child layout under ``target_alias``.  Output is a
    single count row.
    """

    def __init__(
        self,
        child: LogicalOp,
        target: TableDescriptor,
        target_alias: str,
        assignments: Sequence[tuple[str, Expression]],
    ):
        self.children = (child,)
        self.target = target
        self.target_alias = target_alias
        self.assignments: tuple[tuple[str, Expression], ...] = tuple(assignments)

    @property
    def child(self) -> LogicalOp:
        return self.children[0]

    def output_layout(self) -> RowLayout:
        return RowLayout([(None, "updated")])

    def describe(self) -> str:
        sets = ", ".join(f"{col}={expr!r}" for col, expr in self.assignments)
        return f"{self.target.name}: {sets}"


class LogicalDelete(LogicalOp):
    """``DELETE FROM target [USING ...] WHERE ...``.

    The child produces the rows to delete; the target table's columns must
    be visible in the child layout under ``target_alias``.  Output is a
    single count row.
    """

    def __init__(
        self,
        child: LogicalOp,
        target: TableDescriptor,
        target_alias: str,
    ):
        self.children = (child,)
        self.target = target
        self.target_alias = target_alias

    @property
    def child(self) -> LogicalOp:
        return self.children[0]

    def output_layout(self) -> RowLayout:
        return RowLayout([(None, "deleted")])

    def describe(self) -> str:
        return self.target.name


def partitioned_gets(root: LogicalOp) -> list[LogicalGet]:
    """All Get operators over partitioned tables, in traversal order.

    These are the scans that become DynamicScans and need
    PartitionSelectors (the initialisation step of Algorithm 1)."""
    return [
        op
        for op in root.walk()
        if isinstance(op, LogicalGet) and op.table.is_partitioned
    ]
