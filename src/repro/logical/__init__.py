"""Logical operator algebra produced by the binder."""

from .ops import (
    INNER,
    SEMI,
    LogicalDelete,
    LogicalGet,
    LogicalGroupBy,
    LogicalJoin,
    LogicalLimit,
    LogicalOp,
    LogicalProject,
    LogicalSelect,
    LogicalSort,
    LogicalUpdate,
    partitioned_gets,
)

__all__ = [
    "INNER",
    "SEMI",
    "LogicalDelete",
    "LogicalGet",
    "LogicalGroupBy",
    "LogicalJoin",
    "LogicalLimit",
    "LogicalOp",
    "LogicalProject",
    "LogicalSelect",
    "LogicalSort",
    "LogicalUpdate",
    "partitioned_gets",
]
