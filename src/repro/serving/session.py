"""Serving sessions: one client's isolated view of the server.

A :class:`Session` is the unit of isolation in the serving tier.  Each
one carries:

* its **own defaults** — workers, timeout, max_rows, cache mode,
  optimizer — applied to every query it submits (overridable per call);
* its **own** :class:`~repro.resilience.FaultInjector`, so chaos armed
  by one client never fires inside another client's query;
* its **own cancel scope** — :meth:`Session.cancel` cancels exactly the
  session's in-flight queries (each submit runs under a fresh
  :class:`~repro.resilience.CancelToken` registered here) and never
  touches other sessions;
* its own counters (submitted / admitted / rejected), feeding the
  server's per-session stats and ``repro_serving_*`` metric families.

Sessions are also the fairness domain: the
:class:`~repro.serving.AdmissionController` caps in-flight queries and
round-robins queued work *per session*.
"""

from __future__ import annotations

import threading

from ..resilience.faults import FaultInjector
from ..resilience.guardrails import CancelToken

__all__ = ["Session"]


class Session:
    """One client's settings, fault scope and cancel scope."""

    def __init__(
        self,
        server,
        session_id: int,
        name: str | None = None,
        workers: int | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
        cache: str | None = None,
        optimizer: str | None = None,
        fault_seed: int = 0,
        batch_size: int | None = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError("workers must be >= 1")
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.server = server
        self.session_id = session_id
        self.name = name if name else f"session-{session_id}"
        self.workers = workers
        self.batch_size = batch_size
        self.timeout = timeout
        self.max_rows = max_rows
        self.cache = cache
        self.optimizer = optimizer
        #: session-scoped chaos: arm via ``session.faults.arm(...)``
        self.faults = FaultInjector(seed=fault_seed)
        self.closed = False
        self._lock = threading.Lock()
        #: cancel tokens of the session's in-flight queries
        self._active_tokens: set[CancelToken] = set()
        # -- per-session counters (server stats / prometheus) --
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0

    # -- querying -------------------------------------------------------------

    def sql(self, query: str, **overrides):
        """Submit one statement through the server's admission path.

        Keyword overrides (``params``, ``timeout``, ``max_rows``,
        ``workers``, ``cache``, ``optimizer``, ``analyze``, ``trace``,
        ``cancel``, ...) take precedence over the session defaults for
        this call only.  Raises
        :class:`~repro.errors.ServerOverloaded` when shed.
        """
        return self.server.submit(self, query, **overrides)

    # -- cancellation ---------------------------------------------------------

    def cancel(self) -> int:
        """Cancel every in-flight query of *this* session (cooperative:
        each raises :class:`~repro.errors.QueryCancelled` at its next
        guardrail checkpoint).  Returns how many were signalled."""
        with self._lock:
            tokens = list(self._active_tokens)
        for token in tokens:
            token.cancel()
        return len(tokens)

    @property
    def inflight(self) -> int:
        with self._lock:
            return len(self._active_tokens)

    def _register(self, token: CancelToken) -> None:
        with self._lock:
            self._active_tokens.add(token)

    def _unregister(self, token: CancelToken) -> None:
        with self._lock:
            self._active_tokens.discard(token)

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Cancel anything in flight and detach from the server."""
        if self.closed:
            return
        self.closed = True
        self.cancel()
        self.server._discard(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def settings_dict(self) -> dict:
        return {
            "name": self.name,
            "workers": self.workers,
            "batch_size": self.batch_size,
            "timeout": self.timeout,
            "max_rows": self.max_rows,
            "cache": self.cache,
            "optimizer": self.optimizer,
        }

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return f"Session({self.name!r}, {state})"
