"""The HTTP scrape sidecar: ``/metrics``, ``/healthz``, ``/activity``.

The :class:`~repro.serving.netserver.NetServer` speaks the repro REPL's
line protocol; monitoring systems speak HTTP.  :class:`ScrapeServer` is
the bridge — a tiny stdlib :class:`~http.server.ThreadingHTTPServer`
bound next to the query listener, serving exactly three read-only
endpoints:

* ``GET /metrics`` — every Prometheus family the engine exports, from
  the one consolidated exporter (:func:`repro.obs.prom
  .export_prometheus`); each scrape first polls the live gauge sources
  (:meth:`~repro.obs.live.LiveTelemetry.sample_now`), so the series stay
  fresh even between ticker firings.
* ``GET /healthz`` — segment/mirror health from
  :class:`~repro.resilience.SegmentHealth` as JSON; the status code is
  the contract — 200 while every segment can serve reads (mirrors
  count), 503 once any segment is double-faulted.  A segment whose
  primary is down **or resyncing** (replaying missed mutations before
  rejoining — see docs/durability.md) reports ``"degraded"``: reads
  still work off the mirror, but redundancy is reduced.
* ``GET /activity`` — the live registry
  (``pg_stat_activity``-style) as JSON: one row per in-flight query with
  phase, elapsed/queued time and rows/partitions so far.

The handler only reads; queries and cancellation stay on the query
protocols.  Start one with ``--serve --metrics-port N`` or
``db.serve_scrape(port)``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs.prom import export_prometheus

__all__ = ["ScrapeServer"]

#: the content type Prometheus expects for text exposition 0.0.4
PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _ScrapeHandler(BaseHTTPRequestHandler):
    """One GET-only handler over the owning server's Database."""

    server_version = "repro-scrape"
    #: set per bound class by ScrapeServer
    db = None

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            self.db.live.sample_now()
            self._respond(200, export_prometheus(self.db), PROM_CONTENT_TYPE)
        elif path == "/healthz":
            status = self.db.health.status()
            # Every segment can serve reads while its primary OR mirror is
            # up; a double fault means data is unreachable -> 503.
            double_faults = [
                segment
                for segment, (primary, mirror) in enumerate(
                    zip(status["primaries"], status["mirrors"])
                )
                if primary != "up" and mirror != "up"
            ]
            # down_segments includes resyncing primaries: a copy that is
            # still replaying missed mutations is not yet serving reads,
            # so the instance reports degraded until the resync completes
            body = {
                "status": "unhealthy" if double_faults else (
                    "degraded" if status["down_segments"] else "ok"
                ),
                "double_faults": double_faults,
                **status,
            }
            self._respond_json(503 if double_faults else 200, body)
        elif path == "/activity":
            live = self.db.live
            self._respond_json(
                200,
                {
                    "in_flight": live.activity.snapshot(),
                    "completed": live.completed,
                    "failed": live.failed,
                    "slow_log": live.slow_log.to_dict(),
                },
            )
        else:
            self._respond_json(
                404,
                {"error": f"unknown path {path!r}",
                 "paths": ["/metrics", "/healthz", "/activity"]},
            )

    def _respond_json(self, code: int, body: dict) -> None:
        self._respond(
            code,
            json.dumps(body, sort_keys=True, default=str) + "\n",
            "application/json; charset=utf-8",
        )

    def _respond(self, code: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, *args) -> None:
        """Silence per-request stderr logging (scrapes are periodic)."""


class ScrapeServer:
    """The HTTP sidecar serving ``/metrics``, ``/healthz``, ``/activity``.

    Binding starts the listener thread and the database's live-telemetry
    ticker; :meth:`close` stops both (the ticker only if this server
    started it).
    """

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0):
        self.db = db
        # a per-instance handler class so concurrent ScrapeServers (tests)
        # never share the db reference through the class attribute
        handler = type("_BoundScrapeHandler", (_ScrapeHandler,), {"db": db})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-scrape:{self.port}",
            daemon=True,
        )
        self._started_ticker = not db.live.ticker_running
        if self._started_ticker:
            db.live.start_ticker()
        self._closed = False
        self._thread.start()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=2.0)
        if self._started_ticker:
            self.db.live.stop_ticker()

    def __enter__(self) -> "ScrapeServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"ScrapeServer({self.address}, {state})"
