"""The serving tier's shared segment-worker pool.

Per-query execution uses a :class:`~repro.executor.scheduler.SegmentScheduler`
that, standalone, owns a private thread pool.  Under a concurrent
serving tier that would mean ``queries x workers`` threads — the classic
thread explosion.  :class:`QueryScheduler` instead owns **one**
:class:`~concurrent.futures.ThreadPoolExecutor` of ``pool_workers``
threads and hands every admitted query a ``SegmentScheduler`` *view*
over it, so per-(slice, segment) instances from different queries
interleave on the same workers.

Safety argument for sharing the pool: instance thunks never wait on
other futures and never submit nested work — each runs its slice's
iterator tree to completion against already-materialized Motion inputs
(slice-at-a-time barrier), so a full pool delays instances but cannot
deadlock them.  Degraded (serial) queries bypass the pool entirely.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from ..executor.scheduler import SegmentScheduler

__all__ = ["QueryScheduler"]


class _BusyCounter:
    """Pool occupancy: instances currently running on the shared pool."""

    __slots__ = ("_lock", "value")

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def enter(self) -> None:
        with self._lock:
            self.value += 1

    def leave(self) -> None:
        with self._lock:
            self.value -= 1


class QueryScheduler:
    """One shared worker pool multiplexing every admitted query."""

    def __init__(self, pool_workers: int):
        if pool_workers < 1:
            raise ValueError("pool_workers must be >= 1")
        self.pool_workers = pool_workers
        self._pool = ThreadPoolExecutor(
            max_workers=pool_workers, thread_name_prefix="repro-serving"
        )
        self._lock = threading.Lock()
        self._closed = False
        #: SegmentScheduler views handed out (cumulative; observability)
        self.views_created = 0
        #: instances currently occupying pool workers (live gauge source)
        self._busy = _BusyCounter()

    def segment_scheduler(self, workers: int) -> SegmentScheduler:
        """A per-query scheduler over the shared pool.

        ``workers <= 1`` returns a serial scheduler (inline execution, no
        pool involvement) — the degraded-grant path.  The returned
        scheduler never shuts the shared pool down; its ``close()`` only
        drops the reference.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("QueryScheduler is closed")
            self.views_created += 1
            if workers <= 1:
                return SegmentScheduler(1)
            return SegmentScheduler(workers, pool=self._pool, busy=self._busy)

    def busy_fraction(self) -> float:
        """Fraction of pool workers currently running an instance (may
        briefly read above 1.0 while submitted instances outnumber
        workers)."""
        return self._busy.value / self.pool_workers

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=True)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"QueryScheduler({self.pool_workers} pool workers, {state})"
