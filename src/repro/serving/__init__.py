"""The concurrent serving tier (see docs/serving.md).

Layering, outermost first:

* :class:`NetServer` — optional TCP front end; one REPL + serving
  session per connection.
* :class:`QueryServer` — sessions, the submit path, serving stats and
  the ``repro_serving_*`` Prometheus families.  Reached via
  :meth:`~repro.engine.Database.serve`.
* :class:`Session` — per-client isolation: settings, fault injector,
  cancel scope (:meth:`~repro.engine.Database.session`).
* :class:`AdmissionController` / :class:`ServingConfig` — concurrency
  slots, bounded fair-share run queue, load shedding
  (:class:`~repro.errors.ServerOverloaded`) and graceful
  worker-width degradation.
* :class:`QueryScheduler` — the one shared segment-worker pool all
  admitted queries multiplex onto.
* :class:`ScrapeServer` — HTTP sidecar serving ``/metrics``,
  ``/healthz`` and ``/activity`` for monitoring systems
  (:meth:`~repro.engine.Database.serve_scrape`).
"""

from ..errors import ServerOverloaded
from .admission import AdmissionController, AdmissionSlot, ServingConfig
from .netserver import EOT, NetServer
from .scheduler import QueryScheduler
from .scrape import ScrapeServer
from .server import QueryServer, ServingStats
from .session import Session

__all__ = [
    "AdmissionController",
    "AdmissionSlot",
    "ServingConfig",
    "QueryScheduler",
    "QueryServer",
    "ScrapeServer",
    "ServingStats",
    "Session",
    "NetServer",
    "EOT",
    "ServerOverloaded",
]
