"""Admission control: the bounded run queue in front of the executor.

An MPP serving tier cannot run every arriving query at once — doing so
turns overload into collapse (every query slow, memory exhausted, no
useful work finishing).  The classic answer, which this module models, is
**admission control**: a fixed number of concurrency slots, a bounded
queue in front of them, and explicit *load shedding* once the queue is
full or a query has waited too long.  A shed query fails fast with a
typed :class:`~repro.errors.ServerOverloaded` the client can retry
against — strictly better than an un-typed timeout minutes later.

Three mechanisms compose:

* **Slots** — at most ``max_concurrent`` queries execute at once, and at
  most ``session_max_inflight`` of them belong to any one session, so a
  single chatty client cannot monopolize the tier.
* **Fair-share queueing** — queued queries wait in per-session FIFO
  queues drained round-robin, so under contention every waiting session
  is granted slots at the same rate regardless of how many requests each
  has piled up.
* **Graceful degradation** — before shedding, the controller narrows
  admitted queries: above ``degrade_mid`` load a query's segment-worker
  request is halved, above ``degrade_high`` it is clamped to serial.
  Narrow-but-admitted beats wide-but-shed, and serial execution bypasses
  the shared pool entirely, genuinely relieving pressure.

The controller is purely cooperative and thread-safe: callers
:meth:`~AdmissionController.acquire` a slot (blocking in the queue, up
to ``queue_timeout_s``), run their query, and
:meth:`~AdmissionController.release` it, which dispatches the next
queued ticket(s) round-robin.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..errors import ServerOverloaded

__all__ = ["ServingConfig", "AdmissionController", "AdmissionSlot"]


class ServingConfig:
    """Tuning knobs for one :class:`~repro.serving.QueryServer`.

    The defaults are sized for the in-process simulator: a handful of
    concurrent queries, a small queue, sub-second queue timeouts in
    tests.  ``pool_workers`` is the width of the shared segment-worker
    pool all admitted queries multiplex onto (default: enough for every
    concurrent query to get two workers).
    """

    __slots__ = (
        "max_concurrent",
        "max_queued",
        "queue_timeout_s",
        "session_max_inflight",
        "pool_workers",
        "degrade_mid",
        "degrade_high",
    )

    def __init__(
        self,
        max_concurrent: int = 4,
        max_queued: int = 16,
        queue_timeout_s: float = 5.0,
        session_max_inflight: int = 2,
        pool_workers: int | None = None,
        degrade_mid: float = 0.5,
        degrade_high: float = 0.75,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        if queue_timeout_s < 0:
            raise ValueError("queue_timeout_s must be >= 0")
        if session_max_inflight < 1:
            raise ValueError("session_max_inflight must be >= 1")
        if not 0.0 < degrade_mid <= degrade_high <= 1.0:
            raise ValueError(
                "need 0 < degrade_mid <= degrade_high <= 1"
            )
        self.max_concurrent = max_concurrent
        self.max_queued = max_queued
        self.queue_timeout_s = queue_timeout_s
        self.session_max_inflight = session_max_inflight
        self.pool_workers = (
            pool_workers if pool_workers is not None else 2 * max_concurrent
        )
        if self.pool_workers < 1:
            raise ValueError("pool_workers must be >= 1")
        self.degrade_mid = degrade_mid
        self.degrade_high = degrade_high

    def to_dict(self) -> dict:
        return {
            "max_concurrent": self.max_concurrent,
            "max_queued": self.max_queued,
            "queue_timeout_s": self.queue_timeout_s,
            "session_max_inflight": self.session_max_inflight,
            "pool_workers": self.pool_workers,
            "degrade_mid": self.degrade_mid,
            "degrade_high": self.degrade_high,
        }

    def __repr__(self) -> str:
        return (
            f"ServingConfig(max_concurrent={self.max_concurrent}, "
            f"max_queued={self.max_queued}, "
            f"queue_timeout_s={self.queue_timeout_s}, "
            f"session_max_inflight={self.session_max_inflight}, "
            f"pool_workers={self.pool_workers})"
        )


class AdmissionSlot:
    """One granted unit of concurrency; must be released exactly once."""

    __slots__ = (
        "session_id",
        "requested_workers",
        "effective_workers",
        "queued_seconds",
        "degraded",
    )

    def __init__(
        self,
        session_id: int,
        requested_workers: int,
        effective_workers: int,
        queued_seconds: float,
        degraded: bool,
    ):
        self.session_id = session_id
        self.requested_workers = requested_workers
        self.effective_workers = effective_workers
        self.queued_seconds = queued_seconds
        self.degraded = degraded


class _Ticket:
    """One waiter in the run queue."""

    __slots__ = ("session_id", "requested_workers", "slot")

    def __init__(self, session_id: int, requested_workers: int):
        self.session_id = session_id
        self.requested_workers = requested_workers
        #: set (under the controller lock) when the dispatcher grants it
        self.slot: AdmissionSlot | None = None


class AdmissionController:
    """Slots + bounded fair-share queue + shedding (see module docs)."""

    def __init__(self, config: ServingConfig):
        self.config = config
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._inflight_total = 0
        self._inflight: dict[int, int] = {}
        #: per-session FIFO queues of waiting tickets
        self._queues: dict[int, deque[_Ticket]] = {}
        #: round-robin rotation order over sessions with queued tickets
        self._rr: deque[int] = deque()
        self._queued = 0
        self._closed = False
        # -- cumulative counters (read under the lock) --
        self.admitted = 0
        self.rejected = {"queue_full": 0, "queue_timeout": 0, "shutdown": 0}
        self.degraded_grants = 0
        self.queued_seconds_total = 0.0
        self.queued_grants = 0

    # -- the client side ------------------------------------------------------

    def acquire(
        self, session_id: int, requested_workers: int = 1
    ) -> AdmissionSlot:
        """Block until a slot is granted, or shed with
        :class:`~repro.errors.ServerOverloaded` (``reason`` one of
        ``queue_full``, ``queue_timeout``, ``shutdown``)."""
        start = time.monotonic()
        with self._cond:
            if self._closed:
                self.rejected["shutdown"] += 1
                raise ServerOverloaded(
                    "server is shut down", reason="shutdown"
                )
            if self._queued == 0 and self._can_admit(session_id):
                return self._admit(session_id, requested_workers, 0.0)
            if self._queued >= self.config.max_queued:
                self.rejected["queue_full"] += 1
                raise ServerOverloaded(
                    f"run queue full ({self.config.max_queued} queued, "
                    f"{self._inflight_total} in flight)",
                    reason="queue_full",
                )
            ticket = _Ticket(session_id, requested_workers)
            self._enqueue(ticket)
            # The new ticket may be immediately runnable (e.g. everything
            # ahead of it is blocked on per-session caps).
            self._dispatch()
            deadline = start + self.config.queue_timeout_s
            while ticket.slot is None and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            if ticket.slot is not None:
                waited = time.monotonic() - start
                ticket.slot.queued_seconds = waited
                self.queued_seconds_total += waited
                self.queued_grants += 1
                return ticket.slot
            self._remove(ticket)
            if self._closed:
                self.rejected["shutdown"] += 1
                raise ServerOverloaded(
                    "server is shut down", reason="shutdown"
                )
            self.rejected["queue_timeout"] += 1
            raise ServerOverloaded(
                f"no slot within queue_timeout_s="
                f"{self.config.queue_timeout_s}",
                reason="queue_timeout",
            )

    def release(self, slot: AdmissionSlot) -> None:
        """Return one slot and hand freed capacity to queued tickets."""
        with self._cond:
            self._inflight_total -= 1
            count = self._inflight.get(slot.session_id, 1) - 1
            if count <= 0:
                self._inflight.pop(slot.session_id, None)
            else:
                self._inflight[slot.session_id] = count
            self._dispatch()

    def close(self) -> None:
        """Stop admitting; queued waiters are shed with ``shutdown``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    # -- internals (lock held) ------------------------------------------------

    def _can_admit(self, session_id: int) -> bool:
        return (
            self._inflight_total < self.config.max_concurrent
            and self._inflight.get(session_id, 0)
            < self.config.session_max_inflight
        )

    def _effective_workers(self, requested: int) -> tuple[int, bool]:
        """Degrade a grant's parallelism under load.

        Load is the occupancy the grant *joins* (queries already in
        flight over ``max_concurrent``), so the first query into an idle
        server always gets what it asked for and later arrivals narrow
        as the tier fills.  Serial execution (workers=1) bypasses the
        shared pool entirely, so clamping genuinely sheds pool pressure
        rather than just queueing it.  Callers evaluate this *before*
        counting the new grant in flight.
        """
        if requested <= 1:
            return max(1, requested), False
        load = self._inflight_total / self.config.max_concurrent
        if load >= self.config.degrade_high:
            return 1, True
        if load >= self.config.degrade_mid:
            return max(1, requested // 2), True
        return requested, False

    def _admit(
        self, session_id: int, requested_workers: int, queued_seconds: float
    ) -> AdmissionSlot:
        effective, degraded = self._effective_workers(requested_workers)
        self._inflight_total += 1
        self._inflight[session_id] = self._inflight.get(session_id, 0) + 1
        self.admitted += 1
        if degraded:
            self.degraded_grants += 1
        return AdmissionSlot(
            session_id, requested_workers, effective, queued_seconds, degraded
        )

    def _enqueue(self, ticket: _Ticket) -> None:
        queue = self._queues.get(ticket.session_id)
        if queue is None:
            queue = deque()
            self._queues[ticket.session_id] = queue
            self._rr.append(ticket.session_id)
        queue.append(ticket)
        self._queued += 1

    def _remove(self, ticket: _Ticket) -> None:
        """Drop a timed-out/shed ticket from its session queue."""
        queue = self._queues.get(ticket.session_id)
        if queue is None:
            return
        try:
            queue.remove(ticket)
        except ValueError:
            return
        self._queued -= 1
        if not queue:
            del self._queues[ticket.session_id]
            try:
                self._rr.remove(ticket.session_id)
            except ValueError:
                pass

    def _dispatch(self) -> None:
        """Grant free slots to queued tickets, round-robin by session.

        One full rotation of ``_rr`` per grant: the first session in
        rotation order that has a waiting ticket *and* headroom under its
        per-session cap wins, and the rotation pointer moves past it so
        the next grant starts with the following session — equal
        grant-rate per waiting session, however deep any one session's
        backlog is.
        """
        granted = False
        while (
            self._queued
            and self._inflight_total < self.config.max_concurrent
        ):
            ticket = self._next_ticket()
            if ticket is None:
                break
            ticket.slot = self._admit(
                ticket.session_id, ticket.requested_workers, 0.0
            )
            granted = True
        if granted:
            self._cond.notify_all()

    def _next_ticket(self) -> _Ticket | None:
        for _ in range(len(self._rr)):
            session_id = self._rr[0]
            self._rr.rotate(-1)
            if (
                self._inflight.get(session_id, 0)
                >= self.config.session_max_inflight
            ):
                continue
            queue = self._queues.get(session_id)
            if not queue:
                continue
            ticket = queue.popleft()
            self._queued -= 1
            if not queue:
                del self._queues[session_id]
                try:
                    self._rr.remove(session_id)
                except ValueError:
                    pass
            return ticket
        return None

    # -- observability --------------------------------------------------------

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queued

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight_total

    def stats(self) -> dict:
        """A consistent snapshot of gauges and counters."""
        with self._lock:
            return {
                "inflight": self._inflight_total,
                "inflight_by_session": dict(self._inflight),
                "queue_depth": self._queued,
                "admitted": self.admitted,
                "rejected": dict(self.rejected),
                "degraded_grants": self.degraded_grants,
                "queued_grants": self.queued_grants,
                "queued_seconds_total": round(self.queued_seconds_total, 6),
            }
