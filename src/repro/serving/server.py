"""The concurrent serving front end: sessions -> admission -> shared pool.

:class:`QueryServer` ties the serving tier together.  A submit runs:

1. ``span("queue")`` — :meth:`AdmissionController.acquire` blocks in the
   bounded fair-share queue (or sheds with
   :class:`~repro.errors.ServerOverloaded`);
2. ``span("admit")`` — the query executes via
   :meth:`~repro.engine.Database.sql` with the *session's* isolated
   defaults, fault injector and a per-query
   :class:`~repro.resilience.CancelToken`, its segment instances
   multiplexed onto the shared :class:`QueryScheduler` pool at the
   slot's (possibly degraded) worker width;
3. the slot is released (dispatching queued work) and the query's
   serving summary is recorded into its metrics export (schema v6
   ``serving`` section) plus the server-wide :class:`ServingStats`.

Everything the tier does is observable: ``stats_dict()`` for one
structured snapshot, ``to_prometheus()`` for ``repro_serving_*``
families (admission counters, queue/inflight gauges, per-session p50/p99
latency).
"""

from __future__ import annotations

import threading
import time
from collections import deque

from ..errors import ReproError, ServerOverloaded
from ..obs import trace as obs_trace
from ..resilience.guardrails import CancelToken
from .admission import AdmissionController, ServingConfig
from .scheduler import QueryScheduler
from .session import Session

__all__ = ["QueryServer", "ServingStats"]

#: per-session latency reservoir size (newest samples win)
_RESERVOIR = 1024


def _percentile(sorted_values: list[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(fraction * (len(sorted_values) - 1)))))
    return sorted_values[rank]


class ServingStats:
    """Per-session latency/throughput accounting for the server."""

    def __init__(self):
        self._lock = threading.Lock()
        self._latencies: dict[str, deque[float]] = {}
        self._queries: dict[str, int] = {}

    def record(self, session_name: str, latency_s: float) -> None:
        with self._lock:
            reservoir = self._latencies.get(session_name)
            if reservoir is None:
                reservoir = deque(maxlen=_RESERVOIR)
                self._latencies[session_name] = reservoir
            reservoir.append(latency_s)
            self._queries[session_name] = (
                self._queries.get(session_name, 0) + 1
            )

    def session_summary(self, session_name: str) -> dict:
        with self._lock:
            sample = sorted(self._latencies.get(session_name, ()))
            count = self._queries.get(session_name, 0)
        return {
            "queries": count,
            "p50_s": round(_percentile(sample, 0.50), 6),
            "p99_s": round(_percentile(sample, 0.99), 6),
        }

    def to_dict(self) -> dict:
        with self._lock:
            names = list(self._queries)
        return {name: self.session_summary(name) for name in sorted(names)}


class QueryServer:
    """Admission-controlled, fair-share concurrent query front end."""

    def __init__(self, db, config: ServingConfig | None = None):
        self.db = db
        self.config = config if config is not None else ServingConfig()
        self.admission = AdmissionController(self.config)
        self.scheduler = QueryScheduler(self.config.pool_workers)
        self.stats = ServingStats()
        self._lock = threading.Lock()
        self._sessions: dict[int, Session] = {}
        self._next_id = 1
        self._closed = False

    # -- sessions -------------------------------------------------------------

    def session(self, **settings) -> Session:
        """Open one isolated :class:`~repro.serving.Session`."""
        with self._lock:
            if self._closed:
                raise ReproError("server is closed")
            session = Session(self, self._next_id, **settings)
            self._next_id += 1
            self._sessions[session.session_id] = session
            return session

    def sessions(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def _discard(self, session: Session) -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    # -- the submit path ------------------------------------------------------

    def submit(
        self,
        session: Session,
        query: str,
        params=None,
        analyze: bool = False,
        trace: bool = False,
        optimizer: str | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
        workers: int | None = None,
        cache: str | None = None,
        batch_size: int | None = None,
        cancel: CancelToken | None = None,
        **options,
    ):
        """Run one statement for ``session`` through admission control.

        Raises :class:`~repro.errors.ServerOverloaded` when shed; any
        executor/guardrail error propagates unchanged (typed).  On
        success the result's metrics carry a ``serving`` section with
        the grant's queue wait and (possibly degraded) worker width.
        """
        if self._closed:
            raise ReproError("server is closed")
        if session.closed:
            raise ReproError(f"session {session.name!r} is closed")
        session.submitted += 1
        requested = workers if workers is not None else session.workers
        if requested is None:
            requested = self.db.executor.workers
        started = time.perf_counter()
        # Register with the live activity registry BEFORE admission, so a
        # statement waiting in the run queue is already visible (phase
        # "queue") in \activity; db.sql() completes the record, except on
        # the shed/pre-admission paths where it is never reached.
        token = cancel if cancel is not None else CancelToken()
        activity = self.db.live.begin(
            query, session=session.name, workers=requested, cancel=token
        )
        try:
            with obs_trace.feed_phases(activity.enter_phase):
                try:
                    with obs_trace.span(
                        "queue", session=session.name, workers=requested
                    ):
                        slot = self.admission.acquire(
                            session.session_id, requested
                        )
                except ServerOverloaded:
                    session.rejected += 1
                    raise
                activity.queued_seconds = slot.queued_seconds
                activity.workers = slot.effective_workers
                session._register(token)
                segment_scheduler = self.scheduler.segment_scheduler(
                    slot.effective_workers
                )
                try:
                    with obs_trace.span(
                        "admit",
                        session=session.name,
                        workers=slot.effective_workers,
                        degraded=slot.degraded,
                    ):
                        result = self.db.sql(
                            query,
                            optimizer=(
                                optimizer
                                if optimizer is not None
                                else (session.optimizer or "orca")
                            ),
                            params=params,
                            analyze=analyze,
                            trace=trace,
                            timeout=(
                                timeout
                                if timeout is not None
                                else session.timeout
                            ),
                            max_rows=(
                                max_rows
                                if max_rows is not None
                                else session.max_rows
                            ),
                            cancel=token,
                            workers=slot.effective_workers,
                            cache=cache if cache is not None else session.cache,
                            batch_size=(
                                batch_size
                                if batch_size is not None
                                else session.batch_size
                            ),
                            faults=session.faults,
                            scheduler=segment_scheduler,
                            activity=activity,
                            **options,
                        )
                finally:
                    segment_scheduler.close()
                    session._unregister(token)
                    self.admission.release(slot)
        except BaseException as error:
            # db.sql() completes the activity for every error it saw; the
            # shed / pre-admission failures never reach it.
            if self.db.live.activity.get(activity.query_id) is not None:
                self.db.live.complete(activity, error=error)
            raise
        latency = time.perf_counter() - started
        session.admitted += 1
        self.stats.record(session.name, latency)
        snapshot = self.admission.stats()
        result.metrics.record_serving(
            {
                "session": session.name,
                "queued_seconds": round(slot.queued_seconds, 6),
                "requested_workers": slot.requested_workers,
                "effective_workers": slot.effective_workers,
                "degraded": slot.degraded,
                "queue_depth": snapshot["queue_depth"],
                "inflight": snapshot["inflight"],
                "admitted_total": snapshot["admitted"],
                "rejected_total": sum(snapshot["rejected"].values()),
            }
        )
        return result

    # -- observability --------------------------------------------------------

    def stats_dict(self) -> dict:
        """One structured snapshot of the whole serving tier."""
        snapshot = self.admission.stats()
        with self._lock:
            open_sessions = {
                s.name: {
                    "submitted": s.submitted,
                    "admitted": s.admitted,
                    "rejected": s.rejected,
                    "inflight": s.inflight,
                }
                for s in self._sessions.values()
            }
        return {
            "config": self.config.to_dict(),
            "admission": snapshot,
            "open_sessions": open_sessions,
            "latency": self.stats.to_dict(),
            "pool_workers": self.scheduler.pool_workers,
            "closed": self._closed,
        }

    def prom_families(self) -> list:
        """The ``repro_serving_*`` families for the shared exporter
        (:mod:`repro.obs.prom`)."""
        from ..obs.prom import MetricFamily

        snapshot = self.admission.stats()
        rejected = MetricFamily(
            "repro_serving_rejected_total",
            "counter",
            "Queries shed by admission control",
        )
        for reason in sorted(snapshot["rejected"]):
            rejected.add(snapshot["rejected"][reason], reason=reason)
        with self._lock:
            sessions = list(self._sessions.values())
        session_inflight = MetricFamily(
            "repro_serving_session_inflight",
            "gauge",
            "Queries in flight per session",
        )
        for session in sorted(sessions, key=lambda s: s.name):
            session_inflight.add(session.inflight, session=session.name)
        latency = MetricFamily(
            "repro_serving_session_latency_seconds",
            "gauge",
            "Per-session query latency quantiles",
        )
        for name, summary in self.stats.to_dict().items():
            for quantile, key in (("0.5", "p50_s"), ("0.99", "p99_s")):
                latency.add(summary[key], session=name, quantile=quantile)
        return [
            MetricFamily(
                "repro_serving_admitted_total",
                "counter",
                "Queries admitted past admission control",
            ).add(snapshot["admitted"]),
            rejected,
            MetricFamily(
                "repro_serving_degraded_total",
                "counter",
                "Grants clamped below their requested worker width",
            ).add(snapshot["degraded_grants"]),
            MetricFamily(
                "repro_serving_queued_seconds_total",
                "counter",
                "Total time admitted queries waited in the run queue",
            ).add(round(snapshot["queued_seconds_total"], 6)),
            MetricFamily(
                "repro_serving_queue_depth",
                "gauge",
                "Queries currently waiting in the run queue",
            ).add(snapshot["queue_depth"]),
            MetricFamily(
                "repro_serving_inflight",
                "gauge",
                "Queries currently executing",
            ).add(snapshot["inflight"]),
            MetricFamily(
                "repro_serving_pool_workers",
                "gauge",
                "Width of the shared segment-worker pool",
            ).add(self.scheduler.pool_workers),
            MetricFamily(
                "repro_serving_sessions_open",
                "gauge",
                "Serving sessions currently open",
            ).add(len(sessions)),
            session_inflight,
            latency,
        ]

    def to_prometheus(self) -> str:
        """``repro_serving_*`` families (same text-exposition style as
        the stats-store and cache exporters)."""
        from ..obs.prom import render

        return render(self.prom_families())

    # -- lifecycle ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Shed queued work, cancel in-flight queries, drain the pool."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            sessions = list(self._sessions.values())
        self.admission.close()
        for session in sessions:
            session.closed = True
            session.cancel()
        self.scheduler.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"QueryServer({len(self._sessions)} sessions, "
            f"{self.config!r}, {state})"
        )
