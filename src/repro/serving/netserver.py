"""A minimal multi-client network front end over the serving tier.

:class:`NetServer` listens on a TCP port and gives every connection its
own :class:`~repro.cli.ReplSession` bound to its own serving
:class:`~repro.serving.Session` — so N concurrent clients get isolated
settings, isolated fault scopes and per-session cancel, all sharing one
:class:`~repro.engine.Database` through the admission-controlled
:class:`~repro.serving.QueryServer`.

Wire protocol (deliberately trivial, for tests and ``python -m repro
--serve PORT``): newline-delimited UTF-8 input lines, exactly as typed
into the REPL; each processed line's output is written back followed by
a line containing only an EOT byte (``\\x04``) so clients can frame
responses without parsing them.  ``\\q`` closes the connection.
"""

from __future__ import annotations

import socket
import threading

__all__ = ["NetServer", "EOT"]

#: response terminator: one line holding a single End-of-Transmission byte
EOT = b"\x04\n"


class NetServer:
    """Threaded line-based TCP server; one REPL + serving session per
    connection."""

    def __init__(self, db, host: str = "127.0.0.1", port: int = 0, **config):
        self.db = db
        self.server = db.serve(**config) if config else db.serve()
        self._sock = socket.create_server((host, port))
        self.host, self.port = self._sock.getsockname()[:2]
        self._threads: list[threading.Thread] = []
        self._accept_thread: threading.Thread | None = None
        self._closed = False

    def start(self) -> "NetServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-netserver", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # socket closed
            thread = threading.Thread(
                target=self._client, args=(conn,), daemon=True
            )
            self._threads.append(thread)
            thread.start()

    def _client(self, conn: socket.socket) -> None:
        from ..cli import ReplSession

        serving_session = self.server.session()
        repl = ReplSession(self.db, serving_session=serving_session)
        try:
            stream = conn.makefile("rwb")
            for raw in stream:
                line = raw.decode("utf-8", "replace").rstrip("\r\n")
                output = repl.handle_line(line)
                if output:
                    stream.write(output.encode("utf-8") + b"\n")
                # Only completed statements get a frame terminator;
                # continuation lines (open multi-line statement) do not.
                if not repl._buffer:
                    stream.write(EOT)
                stream.flush()
                if repl.done:
                    break
        except (OSError, ValueError):
            pass  # client went away mid-statement
        finally:
            serving_session.close()
            try:
                conn.close()
            except OSError:
                pass

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop accepting; running client threads finish their line."""
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "NetServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
