"""TPC-H-like ``lineitem`` workload (paper Section 4.2 and 4.4.1).

The paper's Table 2 uses a ``lineitem`` table with **7 years of data**
partitioned four ways — 42 (two-monthly), 84 (monthly), 169 (bi-weekly),
361 (weekly) — and measures the full-scan overhead of each scenario versus
an unpartitioned table.  :func:`lineitem_scheme` splits the same 7-year
``l_shipdate`` span into any requested number of equal-width ranges so the
exact partition counts of the paper can be reproduced.
"""

from __future__ import annotations

import datetime
import random
from typing import Iterator

from ..catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    range_level,
)
from ..engine import Database
from .. import types as t

#: classic TPC-H date span: 7 years
SHIPDATE_START = datetime.date(1992, 1, 1)
SHIPDATE_END = datetime.date(1999, 1, 1)

#: the paper's Table 2 partitioning scenarios
TABLE2_SCENARIOS = {
    42: "each part represents 2 months",
    84: "partitioned monthly",
    169: "partitioned bi-weekly",
    361: "partitioned weekly",
}

RETURN_FLAGS = ("A", "N", "R")
LINE_STATUSES = ("O", "F")


def lineitem_schema() -> TableSchema:
    return TableSchema.of(
        ("l_orderkey", t.INT),
        ("l_partkey", t.INT),
        ("l_suppkey", t.INT),
        ("l_linenumber", t.INT),
        ("l_quantity", t.FLOAT),
        ("l_extendedprice", t.FLOAT),
        ("l_discount", t.FLOAT),
        ("l_tax", t.FLOAT),
        ("l_returnflag", t.TEXT),
        ("l_linestatus", t.TEXT),
        ("l_shipdate", t.DATE),
    )


def lineitem_scheme(num_parts: int) -> PartitionScheme:
    """Split the 7-year ``l_shipdate`` span into ``num_parts`` equal-width
    date ranges."""
    total_days = (SHIPDATE_END - SHIPDATE_START).days
    bounds = [
        SHIPDATE_START + datetime.timedelta(days=round(i * total_days / num_parts))
        for i in range(num_parts)
    ]
    bounds.append(SHIPDATE_END)
    return PartitionScheme([range_level("l_shipdate", bounds)])


def generate_lineitem(
    row_count: int, seed: int = 1
) -> Iterator[tuple]:
    """Synthetic ``lineitem`` rows with ship dates uniform over the span."""
    rng = random.Random(seed)
    total_days = (SHIPDATE_END - SHIPDATE_START).days
    for i in range(row_count):
        quantity = float(rng.randint(1, 50))
        price = round(rng.uniform(900.0, 105000.0), 2)
        yield (
            i // 4 + 1,  # orderkey: ~4 lines per order
            rng.randint(1, 20000),
            rng.randint(1, 1000),
            i % 4 + 1,
            quantity,
            price,
            round(rng.uniform(0.0, 0.1), 2),
            round(rng.uniform(0.0, 0.08), 2),
            rng.choice(RETURN_FLAGS),
            rng.choice(LINE_STATUSES),
            SHIPDATE_START
            + datetime.timedelta(days=rng.randrange(total_days)),
        )


def build_lineitem_database(
    num_parts: int | None,
    row_count: int = 5000,
    num_segments: int = 4,
    seed: int = 1,
    table_name: str = "lineitem",
) -> Database:
    """A database holding one ``lineitem`` table.

    ``num_parts=None`` builds the unpartitioned baseline of Table 2.
    """
    db = Database(num_segments=num_segments)
    scheme = lineitem_scheme(num_parts) if num_parts else None
    db.create_table(
        table_name,
        lineitem_schema(),
        distribution=DistributionPolicy.hashed("l_orderkey"),
        partition_scheme=scheme,
    )
    db.insert(table_name, generate_lineitem(row_count, seed))
    db.analyze()
    return db


def shipdate_for_fraction(fraction: float) -> datetime.date:
    """The cutoff X such that ``l_shipdate < X`` selects roughly the given
    fraction of the date span (Section 4.4.1's 1%..100% queries)."""
    total_days = (SHIPDATE_END - SHIPDATE_START).days
    return SHIPDATE_START + datetime.timedelta(
        days=round(total_days * fraction)
    )
