"""Synthetic two-table workload of the paper's Sections 4.4.2 / 4.4.3.

``R(a, b)`` and ``S(a, b)`` are both partitioned on ``b``; the paper varies
the partition count and measures plan size for

* the join query ``SELECT * FROM R, S WHERE R.b = S.b AND S.a < 100``
  (dynamic partition elimination — Figure 18(b)), and
* the DML statement ``UPDATE R SET b = S.b FROM S WHERE R.a = S.a``
  (Figure 18(c), where the legacy Planner enumerates all partition-pair
  joins and its plan grows quadratically).

Tables are hash-distributed on ``b`` so that the equi-join is naturally
co-located — the setting in which the legacy Planner's parameter-based
dynamic elimination applies.
"""

from __future__ import annotations

import random
from typing import Iterator

from ..catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from ..engine import Database
from .. import types as t

JOIN_QUERY = "SELECT * FROM r, s WHERE r.b = s.b AND s.a < 100"
UPDATE_QUERY = "UPDATE r SET b = s.b FROM s WHERE r.a = s.a"

#: domain of the partitioning column b
B_DOMAIN = 10_000


def rs_schema() -> TableSchema:
    return TableSchema.of(("a", t.INT), ("b", t.INT))


def generate_rows(row_count: int, seed: int) -> Iterator[tuple]:
    rng = random.Random(seed)
    for i in range(row_count):
        yield (i, rng.randrange(B_DOMAIN))


def build_rs_database(
    num_parts: int,
    rows_per_table: int = 1000,
    num_segments: int = 4,
    seed: int = 11,
) -> Database:
    """R and S, each partitioned on ``b`` into ``num_parts`` ranges."""
    db = Database(num_segments=num_segments)
    for name, table_seed in (("r", seed), ("s", seed + 1)):
        db.create_table(
            name,
            rs_schema(),
            distribution=DistributionPolicy.hashed("b"),
            partition_scheme=PartitionScheme(
                [uniform_int_level("b", 0, B_DOMAIN, num_parts)]
            ),
        )
        db.insert(name, generate_rows(rows_per_table, table_seed))
    db.analyze()
    return db
