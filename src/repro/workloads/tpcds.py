"""TPC-DS-like decision-support workload (paper Sections 4.1 and 4.3).

The paper evaluates partition elimination on the TPC-DS queries that touch
its partitioned tables: ``store_sales``, ``web_sales``, ``catalog_sales``,
``store_returns``, ``web_returns``, ``catalog_returns`` and ``inventory``.
This module builds a scaled-down star schema with the same structure — all
seven fact tables range-partitioned on their date surrogate key — plus the
``date_dim``, ``item`` and ``customer`` dimensions, and defines a workload
of analytic query templates spanning the elimination categories of the
paper's Table 3:

* constant date-range predicates → *static* elimination (both optimizers);
* joins/IN-subqueries against ``date_dim`` → *dynamic* elimination (Orca
  only — the legacy Planner's parameter mechanism does not fire for these
  shapes);
* no date predicate at all → no elimination possible for either.
"""

from __future__ import annotations

import datetime
import random
from typing import Iterator

from ..catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from ..engine import Database
from .. import types as t

#: five years of days; surrogate keys 0 .. NUM_DAYS-1
FIRST_DAY = datetime.date(1998, 1, 1)
NUM_DAYS = 1825
#: each fact table is partitioned into this many date-sk ranges ("monthly")
FACT_PARTITIONS = 60

CATEGORIES = (
    "Books", "Electronics", "Home", "Jewelry", "Music", "Shoes", "Sports",
    "Toys", "Women", "Men",
)
STATES = ("CA", "NY", "TX", "WA", "IL", "GA", "OH", "FL", "MI", "PA")

#: the seven partitioned tables of the paper's experiment
FACT_TABLES = (
    "store_sales",
    "web_sales",
    "catalog_sales",
    "store_returns",
    "web_returns",
    "catalog_returns",
    "inventory",
)


def _fact_scheme(key: str) -> PartitionScheme:
    return PartitionScheme(
        [uniform_int_level(key, 0, NUM_DAYS, FACT_PARTITIONS)]
    )


def create_schema(db: Database) -> None:
    """DDL for the complete star schema."""
    db.create_table(
        "date_dim",
        TableSchema.of(
            ("d_date_sk", t.INT),
            ("d_date", t.DATE),
            ("d_year", t.INT),
            ("d_moy", t.INT),
            ("d_qoy", t.INT),
            ("d_dow", t.INT),
        ),
        distribution=DistributionPolicy.hashed("d_date_sk"),
    )
    db.create_table(
        "item",
        TableSchema.of(
            ("i_item_sk", t.INT),
            ("i_category", t.TEXT),
            ("i_brand_id", t.INT),
            ("i_current_price", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("i_item_sk"),
    )
    db.create_table(
        "customer",
        TableSchema.of(
            ("c_customer_sk", t.INT),
            ("c_state", t.TEXT),
            ("c_birth_year", t.INT),
        ),
        distribution=DistributionPolicy.hashed("c_customer_sk"),
    )
    db.create_table(
        "store_sales",
        TableSchema.of(
            ("ss_sold_date_sk", t.INT),
            ("ss_item_sk", t.INT),
            ("ss_customer_sk", t.INT),
            ("ss_quantity", t.INT),
            ("ss_sales_price", t.FLOAT),
            ("ss_net_profit", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("ss_item_sk"),
        partition_scheme=_fact_scheme("ss_sold_date_sk"),
    )
    db.create_table(
        "web_sales",
        TableSchema.of(
            ("ws_sold_date_sk", t.INT),
            ("ws_item_sk", t.INT),
            ("ws_customer_sk", t.INT),
            ("ws_quantity", t.INT),
            ("ws_sales_price", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("ws_item_sk"),
        partition_scheme=_fact_scheme("ws_sold_date_sk"),
    )
    db.create_table(
        "catalog_sales",
        TableSchema.of(
            ("cs_sold_date_sk", t.INT),
            ("cs_item_sk", t.INT),
            ("cs_customer_sk", t.INT),
            ("cs_quantity", t.INT),
            ("cs_sales_price", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("cs_item_sk"),
        partition_scheme=_fact_scheme("cs_sold_date_sk"),
    )
    db.create_table(
        "store_returns",
        TableSchema.of(
            ("sr_returned_date_sk", t.INT),
            ("sr_item_sk", t.INT),
            ("sr_customer_sk", t.INT),
            ("sr_return_amt", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("sr_item_sk"),
        partition_scheme=_fact_scheme("sr_returned_date_sk"),
    )
    db.create_table(
        "web_returns",
        TableSchema.of(
            ("wr_returned_date_sk", t.INT),
            ("wr_item_sk", t.INT),
            ("wr_customer_sk", t.INT),
            ("wr_return_amt", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("wr_item_sk"),
        partition_scheme=_fact_scheme("wr_returned_date_sk"),
    )
    db.create_table(
        "catalog_returns",
        TableSchema.of(
            ("cr_returned_date_sk", t.INT),
            ("cr_item_sk", t.INT),
            ("cr_customer_sk", t.INT),
            ("cr_return_amt", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("cr_item_sk"),
        partition_scheme=_fact_scheme("cr_returned_date_sk"),
    )
    db.create_table(
        "inventory",
        TableSchema.of(
            ("inv_date_sk", t.INT),
            ("inv_item_sk", t.INT),
            ("inv_quantity_on_hand", t.INT),
        ),
        distribution=DistributionPolicy.hashed("inv_item_sk"),
        partition_scheme=_fact_scheme("inv_date_sk"),
    )


def generate_date_dim() -> Iterator[tuple]:
    for sk in range(NUM_DAYS):
        day = FIRST_DAY + datetime.timedelta(days=sk)
        yield (
            sk,
            day,
            day.year,
            day.month,
            (day.month - 1) // 3 + 1,
            day.isoweekday(),
        )


def generate_item(count: int, rng: random.Random) -> Iterator[tuple]:
    for sk in range(count):
        yield (
            sk,
            rng.choice(CATEGORIES),
            rng.randint(1, 100),
            round(rng.uniform(1.0, 300.0), 2),
        )


def generate_customer(count: int, rng: random.Random) -> Iterator[tuple]:
    for sk in range(count):
        yield (sk, rng.choice(STATES), rng.randint(1930, 2000))


def _sales_row(rng: random.Random, items: int, customers: int) -> tuple:
    return (
        rng.randrange(NUM_DAYS),
        rng.randrange(items),
        rng.randrange(customers),
        rng.randint(1, 20),
        round(rng.uniform(1.0, 300.0), 2),
    )


def load_data(
    db: Database,
    fact_rows: int = 2000,
    items: int = 400,
    customers: int = 300,
    seed: int = 2014,
) -> None:
    """Populate the schema; fact tables get ``fact_rows`` rows each."""
    rng = random.Random(seed)
    db.insert("date_dim", generate_date_dim())
    db.insert("item", generate_item(items, rng))
    db.insert("customer", generate_customer(customers, rng))
    for _ in range(fact_rows):
        base = _sales_row(rng, items, customers)
        db.storage.store_by_name("store_sales").insert(
            base + (round(rng.uniform(-50.0, 150.0), 2),)
        )
    db.insert(
        "web_sales",
        (_sales_row(rng, items, customers) for _ in range(fact_rows)),
    )
    db.insert(
        "catalog_sales",
        (_sales_row(rng, items, customers) for _ in range(fact_rows)),
    )
    for table in ("store_returns", "web_returns", "catalog_returns"):
        db.insert(
            table,
            (
                (
                    rng.randrange(NUM_DAYS),
                    rng.randrange(items),
                    rng.randrange(customers),
                    round(rng.uniform(1.0, 200.0), 2),
                )
                for _ in range(fact_rows // 2)
            ),
        )
    db.insert(
        "inventory",
        (
            (rng.randrange(NUM_DAYS), rng.randrange(items), rng.randint(0, 500))
            for _ in range(fact_rows)
        ),
    )
    db.analyze()


def build_database(
    fact_rows: int = 2000,
    num_segments: int = 4,
    seed: int = 2014,
) -> Database:
    db = Database(num_segments=num_segments)
    create_schema(db)
    load_data(db, fact_rows=fact_rows, seed=seed)
    return db


class WorkloadQuery:
    """One workload query with the elimination category it exercises."""

    def __init__(self, name: str, sql: str, kind: str):
        self.name = name
        self.sql = sql
        #: 'static' | 'dynamic' | 'none' — which elimination the shape allows
        self.kind = kind

    def __repr__(self) -> str:
        return f"WorkloadQuery({self.name}, {self.kind})"


def _year_range(year: int) -> tuple[int, int]:
    """date-sk range [lo, hi] covering one calendar year."""
    lo = (datetime.date(year, 1, 1) - FIRST_DAY).days
    hi = (datetime.date(year, 12, 31) - FIRST_DAY).days
    return lo, hi


def _quarter_range(year: int, quarter: int) -> tuple[int, int]:
    first_month = 3 * (quarter - 1) + 1
    lo = (datetime.date(year, first_month, 1) - FIRST_DAY).days
    if quarter == 4:
        hi = (datetime.date(year, 12, 31) - FIRST_DAY).days
    else:
        hi = (datetime.date(year, first_month + 3, 1) - FIRST_DAY).days - 1
    return lo, hi


def workload_queries() -> list[WorkloadQuery]:
    """The query workload for the Table 3 / Figure 16 / Figure 17 runs."""
    queries: list[WorkloadQuery] = []

    def add(name: str, kind: str, sql: str) -> None:
        queries.append(WorkloadQuery(name, " ".join(sql.split()), kind))

    # --- static elimination: constant ranges on the partition key --------
    y99 = _year_range(1999)
    y00 = _year_range(2000)
    y01 = _year_range(2001)
    q4_00 = _quarter_range(2000, 4)
    q2_01 = _quarter_range(2001, 2)
    add("q01_ss_year_total", "static", f"""
        SELECT sum(ss_sales_price) AS total FROM store_sales
        WHERE ss_sold_date_sk BETWEEN {y00[0]} AND {y00[1]}""")
    add("q02_ss_quarter_avg", "static", f"""
        SELECT avg(ss_sales_price) AS avg_price FROM store_sales
        WHERE ss_sold_date_sk BETWEEN {q4_00[0]} AND {q4_00[1]}""")
    add("q03_ws_year_count", "static", f"""
        SELECT count(*) AS cnt FROM web_sales
        WHERE ws_sold_date_sk BETWEEN {y99[0]} AND {y99[1]}""")
    add("q04_cs_quarter_sum", "static", f"""
        SELECT sum(cs_sales_price) AS total FROM catalog_sales
        WHERE cs_sold_date_sk BETWEEN {q2_01[0]} AND {q2_01[1]}""")
    add("q05_sr_year_returns", "static", f"""
        SELECT sum(sr_return_amt) AS refunds FROM store_returns
        WHERE sr_returned_date_sk BETWEEN {y01[0]} AND {y01[1]}""")
    add("q06_wr_window", "static", f"""
        SELECT count(*) AS cnt, avg(wr_return_amt) AS avg_amt
        FROM web_returns
        WHERE wr_returned_date_sk BETWEEN {q4_00[0]} AND {q4_00[1]}""")
    add("q07_cr_window", "static", f"""
        SELECT sum(cr_return_amt) AS total FROM catalog_returns
        WHERE cr_returned_date_sk BETWEEN {y00[0]} AND {y00[1]}""")
    add("q08_inv_snapshot", "static", f"""
        SELECT avg(inv_quantity_on_hand) AS avg_qty FROM inventory
        WHERE inv_date_sk BETWEEN {q2_01[0]} AND {q2_01[1]}""")
    add("q09_ss_item_static", "static", f"""
        SELECT i_category, sum(ss_sales_price) AS total
        FROM store_sales, item
        WHERE ss_item_sk = i_item_sk
          AND ss_sold_date_sk BETWEEN {q4_00[0]} AND {q4_00[1]}
        GROUP BY i_category""")
    add("q10_ws_customer_static", "static", f"""
        SELECT c_state, count(*) AS orders
        FROM web_sales, customer
        WHERE ws_customer_sk = c_customer_sk
          AND ws_sold_date_sk BETWEEN {y00[0]} AND {y00[1]}
        GROUP BY c_state""")
    add("q11_ss_point_month", "static", f"""
        SELECT count(*) AS cnt FROM store_sales
        WHERE ss_sold_date_sk BETWEEN {q4_00[0]} AND {q4_00[0] + 30}""")
    add("q12_cs_two_years", "static", f"""
        SELECT avg(cs_quantity) AS avg_qty FROM catalog_sales
        WHERE cs_sold_date_sk BETWEEN {y99[0]} AND {y00[1]}""")
    add("q13_inv_low_stock", "static", f"""
        SELECT count(*) AS cnt FROM inventory
        WHERE inv_date_sk BETWEEN {y01[0]} AND {y01[1]}
          AND inv_quantity_on_hand < 50""")
    add("q14_ss_profit_static", "static", f"""
        SELECT sum(ss_net_profit) AS profit FROM store_sales
        WHERE ss_sold_date_sk BETWEEN {y01[0]} AND {y01[1]}
          AND ss_quantity > 5""")
    add("q15_wr_or_ranges", "static", f"""
        SELECT count(*) AS cnt FROM web_returns
        WHERE wr_returned_date_sk BETWEEN {q4_00[0]} AND {q4_00[1]}
           OR wr_returned_date_sk BETWEEN {q2_01[0]} AND {q2_01[1]}""")

    # --- dynamic elimination: the partition key is bound through a join --
    add("q16_ss_in_subquery", "dynamic", """
        SELECT avg(ss_sales_price) AS avg_price FROM store_sales
        WHERE ss_sold_date_sk IN
          (SELECT d_date_sk FROM date_dim
           WHERE d_year = 2000 AND d_moy BETWEEN 10 AND 12)""")
    add("q17_ss_date_join", "dynamic", """
        SELECT d_moy, sum(ss_sales_price) AS total
        FROM store_sales, date_dim
        WHERE ss_sold_date_sk = d_date_sk AND d_year = 2001 AND d_qoy = 2
        GROUP BY d_moy""")
    add("q18_ws_date_join", "dynamic", """
        SELECT count(*) AS cnt FROM web_sales, date_dim
        WHERE ws_sold_date_sk = d_date_sk AND d_year = 1999 AND d_moy = 6""")
    add("q19_cs_in_subquery", "dynamic", """
        SELECT sum(cs_sales_price) AS total FROM catalog_sales
        WHERE cs_sold_date_sk IN
          (SELECT d_date_sk FROM date_dim WHERE d_year = 2002 AND d_qoy = 1)""")
    add("q20_sr_date_join", "dynamic", """
        SELECT avg(sr_return_amt) AS avg_amt FROM store_returns, date_dim
        WHERE sr_returned_date_sk = d_date_sk
          AND d_year = 2000 AND d_dow = 1""")
    add("q21_wr_in_subquery", "dynamic", """
        SELECT count(*) AS cnt FROM web_returns
        WHERE wr_returned_date_sk IN
          (SELECT d_date_sk FROM date_dim WHERE d_year = 2001 AND d_moy = 12)""")
    add("q22_cr_date_join", "dynamic", """
        SELECT sum(cr_return_amt) AS total FROM catalog_returns, date_dim
        WHERE cr_returned_date_sk = d_date_sk AND d_year = 1998 AND d_qoy = 4""")
    add("q23_inv_date_join", "dynamic", """
        SELECT avg(inv_quantity_on_hand) AS avg_qty FROM inventory, date_dim
        WHERE inv_date_sk = d_date_sk AND d_year = 2000 AND d_moy = 1""")
    add("q24_ss_star_dynamic", "dynamic", """
        SELECT i_category, sum(ss_sales_price) AS total
        FROM store_sales, date_dim, item
        WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
          AND d_year = 2001 AND d_moy BETWEEN 4 AND 6
        GROUP BY i_category""")
    add("q25_ws_star_dynamic", "dynamic", """
        SELECT c_state, sum(ws_sales_price) AS total
        FROM web_sales, date_dim, customer
        WHERE ws_sold_date_sk = d_date_sk
          AND ws_customer_sk = c_customer_sk
          AND d_year = 2000 AND d_qoy = 3
        GROUP BY c_state""")
    add("q26_ss_sr_dynamic", "dynamic", """
        SELECT count(*) AS cnt
        FROM store_returns, date_dim
        WHERE sr_returned_date_sk = d_date_sk
          AND d_year = 2002 AND d_moy BETWEEN 1 AND 2""")

    # --- no elimination possible: no predicate reaches the partition key --
    add("q27_ss_full", "none", """
        SELECT count(*) AS cnt, sum(ss_sales_price) AS total
        FROM store_sales""")
    add("q28_ws_by_item", "none", """
        SELECT i_category, avg(ws_sales_price) AS avg_price
        FROM web_sales, item
        WHERE ws_item_sk = i_item_sk AND i_current_price > 100
        GROUP BY i_category""")
    add("q29_cs_big_orders", "none", """
        SELECT count(*) AS cnt FROM catalog_sales WHERE cs_quantity >= 15""")
    add("q30_sr_by_state", "none", """
        SELECT c_state, sum(sr_return_amt) AS refunds
        FROM store_returns, customer
        WHERE sr_customer_sk = c_customer_sk
        GROUP BY c_state""")
    add("q31_inv_total", "none", """
        SELECT sum(inv_quantity_on_hand) AS on_hand FROM inventory""")
    add("q32_wr_heavy", "none", """
        SELECT avg(wr_return_amt) AS avg_amt FROM web_returns
        WHERE wr_return_amt > 100""")
    add("q33_cr_item_join", "none", """
        SELECT i_category, count(*) AS cnt
        FROM catalog_returns, item
        WHERE cr_item_sk = i_item_sk
        GROUP BY i_category""")
    return queries


def fact_table_of(query: WorkloadQuery) -> str:
    """The partitioned table a workload query mainly scans."""
    for table in FACT_TABLES:
        if table in query.sql.lower():
            return table
    raise ValueError(f"query {query.name} references no fact table")
