"""Workload generators for the paper's experiments: TPC-H-like lineitem
(Table 2, Figure 18a), TPC-DS-like star schema (Table 3, Figures 16-17),
and the synthetic R/S pair (Figures 18b-c)."""

from . import synthetic, tpcds, tpch

__all__ = ["synthetic", "tpcds", "tpch"]
