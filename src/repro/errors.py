"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch engine failures without catching unrelated bugs.  The
sub-hierarchy mirrors the pipeline stages: catalog/DDL, SQL front end,
binding, optimization, and execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class CatalogError(ReproError):
    """Errors in DDL or catalog lookups (unknown table, duplicate name...)."""


class PartitionError(CatalogError):
    """Errors in partition definitions or routing (overlapping ranges,
    tuple routed to the invalid partition on insert, unknown OID)."""


class SqlError(ReproError):
    """Lexing or parsing failure.  Carries the offending position."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """Name-resolution failure (unknown column, ambiguous reference...)."""


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for a valid logical tree."""


class InvalidPlanError(ReproError):
    """A physical plan violates a structural invariant, e.g. a Motion
    between a PartitionSelector and its DynamicScan (paper Figure 12)."""


class ExecutionError(ReproError):
    """Runtime failure while executing a physical plan."""


class ChannelError(ExecutionError):
    """Misuse of a partition-OID channel, e.g. a DynamicScan consuming
    before all registered PartitionSelector producers have finished."""
