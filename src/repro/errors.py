"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch engine failures without catching unrelated bugs.  The
sub-hierarchy mirrors the pipeline stages: catalog/DDL, SQL front end,
binding, optimization, and execution.

Each class carries a ``stage`` tag naming the pipeline stage it belongs
to; the CLI uses it to render ``ERROR (<stage>): <message>`` lines.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""

    stage = "engine"


class CatalogError(ReproError):
    """Errors in DDL or catalog lookups (unknown table, duplicate name...)."""

    stage = "catalog"


class PartitionError(CatalogError):
    """Errors in partition definitions or routing (overlapping ranges,
    tuple routed to the invalid partition on insert, unknown OID)."""

    stage = "partition"


class SqlError(ReproError):
    """Lexing or parsing failure.  Carries the offending position."""

    stage = "sql"

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class BindError(ReproError):
    """Name-resolution failure (unknown column, ambiguous reference...)."""

    stage = "bind"


class OptimizerError(ReproError):
    """The optimizer could not produce a plan for a valid logical tree."""

    stage = "optimizer"


class InvalidPlanError(ReproError):
    """A physical plan violates a structural invariant, e.g. a Motion
    between a PartitionSelector and its DynamicScan (paper Figure 12)."""

    stage = "plan"


class ExecutionError(ReproError):
    """Runtime failure while executing a physical plan."""

    stage = "execution"


class ChannelError(ExecutionError):
    """Misuse of a partition-OID channel, e.g. a DynamicScan consuming
    before all registered PartitionSelector producers have finished."""


class SegmentFailure(ExecutionError):
    """A segment instance died while running its part of a slice.

    Carries the failed segment, the injection/detection point, and whether
    the failure is transient (retry in place) or requires failing over the
    segment to its mirror.  The executor catches this to drive slice
    retries; it escapes only when recovery is impossible.
    """

    def __init__(
        self,
        message: str,
        segment: int,
        point: str | None = None,
        transient: bool = False,
    ):
        super().__init__(message)
        self.segment = segment
        self.point = point
        self.transient = transient


class DurabilityError(ReproError):
    """Errors in the write-ahead-log / checkpoint / recovery subsystem."""

    stage = "durability"


class WalCorruption(DurabilityError):
    """A WAL record failed its CRC or structural check *before* the torn
    tail — the log is damaged, not merely truncated by a crash."""


class ResyncRequired(DurabilityError):
    """``SegmentHealth.recover()`` was asked to rejoin a primary that
    missed mutations while down, but no resync path is configured.
    Rejoining it blind would serve stale rows."""


class ServerOverloaded(ReproError):
    """The serving layer refused to admit a query: the run queue is full
    (``reason='queue_full'``) or the request waited past the admission
    queue timeout (``reason='queue_timeout'``).  Load shedding is a
    *clean* failure — nothing was planned or executed — so callers can
    retry with backoff against a healthy server.
    """

    stage = "serving"

    def __init__(self, message: str, reason: str = "queue_full"):
        super().__init__(message)
        self.reason = reason


class QueryCancelled(ExecutionError):
    """The query was cancelled cooperatively via ``ExecContext.cancel()``
    (or its :class:`~repro.resilience.CancelToken`)."""


class QueryTimeout(ExecutionError):
    """The query exceeded its ``timeout_seconds`` guardrail."""


class ResourceLimitExceeded(ExecutionError):
    """A blocking operator exceeded the query's buffered-row budget
    (``max_rows``), the engine's memory-consumption proxy."""
