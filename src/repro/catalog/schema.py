"""Table schemas: ordered, typed columns.

A :class:`TableSchema` is shared by the catalog, the binder (name
resolution) and the storage layer (tuple validation).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from ..errors import CatalogError
from ..types import DataType


class Column:
    """A named, typed column."""

    __slots__ = ("name", "data_type")

    def __init__(self, name: str, data_type: DataType):
        self.name = name
        self.data_type = data_type

    def __repr__(self) -> str:
        return f"Column({self.name}: {self.data_type})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return self.name == other.name and self.data_type is other.data_type

    def __hash__(self) -> int:
        return hash((self.name, self.data_type.kind))


class TableSchema:
    """An ordered list of uniquely named columns."""

    def __init__(self, columns: Sequence[Column]):
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise CatalogError(f"duplicate column name(s): {', '.join(dupes)}")
        self.columns: tuple[Column, ...] = tuple(columns)
        self._index = {c.name: i for i, c in enumerate(columns)}

    @staticmethod
    def of(*pairs: tuple[str, DataType]) -> "TableSchema":
        """Build a schema from ``(name, type)`` pairs."""
        return TableSchema([Column(name, dt) for name, dt in pairs])

    def column_index(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(f"unknown column {name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def has_column(self, name: str) -> bool:
        return name in self._index

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def validate_row(self, row: Sequence[Any]) -> tuple:
        """Type-check and coerce a row, returning it as a tuple."""
        if len(row) != len(self.columns):
            raise CatalogError(
                f"row has {len(row)} values, schema has {len(self.columns)} columns"
            )
        return tuple(
            col.data_type.validate(value) for col, value in zip(self.columns, row)
        )

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return self.columns == other.columns

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.data_type}" for c in self.columns)
        return f"TableSchema({cols})"
