"""The catalog: tables, OIDs, partition hierarchies, distribution policies.

Partitioned tables follow the paper's storage model (Section 3.2): each leaf
partition is a separate physical object with its own OID and an associated
check constraint of the form ``pk ∈ ∪(a, b)``.  The catalog maps a *root*
OID to its :class:`~repro.catalog.partition.PartitionScheme` and to the leaf
OIDs; the runtime's built-in functions (paper Table 1) are thin wrappers
around these lookups.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..errors import CatalogError, PartitionError
from .constraints import IntervalSet
from .partition import LeafId, PartitionScheme
from .schema import TableSchema


class DistributionPolicy:
    """How a table's rows are spread across MPP segments.

    ``HASHED`` distributes by hash of one column; ``REPLICATED`` stores a
    full copy on every segment.  Distribution is orthogonal to partitioning
    (paper Section 3.1): a distributed table may also be partitioned on each
    host.
    """

    HASHED = "hashed"
    REPLICATED = "replicated"

    __slots__ = ("kind", "column")

    def __init__(self, kind: str, column: str | None = None):
        if kind not in (self.HASHED, self.REPLICATED):
            raise CatalogError(f"unknown distribution kind {kind!r}")
        if kind == self.HASHED and column is None:
            raise CatalogError("hashed distribution requires a column")
        if kind == self.REPLICATED and column is not None:
            raise CatalogError("replicated distribution takes no column")
        self.kind = kind
        self.column = column

    @staticmethod
    def hashed(column: str) -> "DistributionPolicy":
        return DistributionPolicy(DistributionPolicy.HASHED, column)

    @staticmethod
    def replicated() -> "DistributionPolicy":
        return DistributionPolicy(DistributionPolicy.REPLICATED)

    def __repr__(self) -> str:
        if self.kind == self.HASHED:
            return f"Hashed({self.column})"
        return "Replicated"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistributionPolicy):
            return NotImplemented
        return self.kind == other.kind and self.column == other.column

    def __hash__(self) -> int:
        return hash((self.kind, self.column))


class TableDescriptor:
    """Catalog entry for one (possibly partitioned) table."""

    def __init__(
        self,
        oid: int,
        name: str,
        schema: TableSchema,
        distribution: DistributionPolicy,
        partition_scheme: PartitionScheme | None,
        leaf_oids: Mapping[LeafId, int] | None,
    ):
        self.oid = oid
        self.name = name
        self.schema = schema
        self.distribution = distribution
        self.partition_scheme = partition_scheme
        self._leaf_oids: dict[LeafId, int] = dict(leaf_oids or {})
        self._leaf_by_oid: dict[int, LeafId] = {
            v: k for k, v in self._leaf_oids.items()
        }

    @property
    def is_partitioned(self) -> bool:
        return self.partition_scheme is not None

    @property
    def partition_keys(self) -> tuple[str, ...]:
        if self.partition_scheme is None:
            return ()
        return self.partition_scheme.keys

    @property
    def num_leaves(self) -> int:
        return len(self._leaf_oids)

    def leaf_oid(self, leaf: LeafId) -> int:
        try:
            return self._leaf_oids[leaf]
        except KeyError:
            raise PartitionError(
                f"table {self.name!r} has no leaf partition {leaf!r}"
            ) from None

    def leaf_id(self, oid: int) -> LeafId:
        try:
            return self._leaf_by_oid[oid]
        except KeyError:
            raise PartitionError(
                f"OID {oid} is not a leaf partition of table {self.name!r}"
            ) from None

    def all_leaf_oids(self) -> list[int]:
        """OIDs of all leaf partitions, in leaf-id order (paper's
        ``partition_expansion``)."""
        assert self.partition_scheme is not None
        return [
            self._leaf_oids[leaf] for leaf in self.partition_scheme.leaf_ids()
        ]

    def route_row(self, row: tuple) -> LeafId | None:
        """``f_T`` applied to a full row of this table."""
        assert self.partition_scheme is not None
        key_values = {
            key: row[self.schema.column_index(key)]
            for key in self.partition_scheme.keys
        }
        return self.partition_scheme.route(key_values)

    def select_leaf_oids(
        self, predicates: Mapping[str, IntervalSet] | None = None
    ) -> list[int]:
        """``f*_T``: OIDs of leaves that may satisfy the per-key predicates."""
        assert self.partition_scheme is not None
        return [
            self._leaf_oids[leaf]
            for leaf in self.partition_scheme.select(predicates)
        ]

    def __repr__(self) -> str:
        part = (
            f", partitioned {self.partition_scheme!r}"
            if self.partition_scheme
            else ""
        )
        return f"TableDescriptor({self.name}, oid={self.oid}{part})"


class Catalog:
    """Registry of tables and OIDs for one database instance."""

    def __init__(self) -> None:
        self._tables_by_name: dict[str, TableDescriptor] = {}
        self._tables_by_oid: dict[int, TableDescriptor] = {}
        self._leaf_owner: dict[int, TableDescriptor] = {}
        self._next_oid = 16384  # first user OID, Postgres tradition

    def _allocate_oid(self) -> int:
        oid = self._next_oid
        self._next_oid += 1
        return oid

    def create_table(
        self,
        name: str,
        schema: TableSchema,
        distribution: DistributionPolicy | None = None,
        partition_scheme: PartitionScheme | None = None,
    ) -> TableDescriptor:
        """Register a table; allocates the root OID and one OID per leaf."""
        if name in self._tables_by_name:
            raise CatalogError(f"table {name!r} already exists")
        if partition_scheme is not None:
            for key in partition_scheme.keys:
                if not schema.has_column(key):
                    raise CatalogError(
                        f"partition key {key!r} is not a column of {name!r}"
                    )
        if distribution is None:
            distribution = DistributionPolicy.hashed(schema.columns[0].name)
        if (
            distribution.kind == DistributionPolicy.HASHED
            and not schema.has_column(distribution.column)  # type: ignore[arg-type]
        ):
            raise CatalogError(
                f"distribution column {distribution.column!r} is not a "
                f"column of {name!r}"
            )
        oid = self._allocate_oid()
        leaf_oids: dict[LeafId, int] | None = None
        if partition_scheme is not None:
            leaf_oids = {
                leaf: self._allocate_oid()
                for leaf in partition_scheme.leaf_ids()
            }
        desc = TableDescriptor(
            oid, name, schema, distribution, partition_scheme, leaf_oids
        )
        self._tables_by_name[name] = desc
        self._tables_by_oid[oid] = desc
        if leaf_oids:
            for leaf_oid in leaf_oids.values():
                self._leaf_owner[leaf_oid] = desc
        return desc

    def register_descriptor(self, desc: TableDescriptor) -> TableDescriptor:
        """Install a pre-built descriptor with its original OIDs — the
        recovery path, which must reproduce the catalog exactly as it was
        (WAL records address tables and leaves by OID)."""
        if desc.name in self._tables_by_name:
            raise CatalogError(f"table {desc.name!r} already exists")
        if desc.oid in self._tables_by_oid:
            raise CatalogError(f"OID {desc.oid} already in use")
        self._tables_by_name[desc.name] = desc
        self._tables_by_oid[desc.oid] = desc
        top = desc.oid
        if desc.is_partitioned:
            for leaf_oid in desc.all_leaf_oids():
                self._leaf_owner[leaf_oid] = desc
                top = max(top, leaf_oid)
        self._next_oid = max(self._next_oid, top + 1)
        return desc

    def drop_table(self, name: str) -> None:
        desc = self.table(name)
        del self._tables_by_name[name]
        del self._tables_by_oid[desc.oid]
        if desc.is_partitioned:
            for leaf_oid in desc.all_leaf_oids():
                del self._leaf_owner[leaf_oid]

    def table(self, name: str) -> TableDescriptor:
        try:
            return self._tables_by_name[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables_by_name

    def table_by_oid(self, oid: int) -> TableDescriptor:
        try:
            return self._tables_by_oid[oid]
        except KeyError:
            raise CatalogError(f"no table with OID {oid}") from None

    def owner_of_leaf(self, leaf_oid: int) -> TableDescriptor:
        try:
            return self._leaf_owner[leaf_oid]
        except KeyError:
            raise CatalogError(f"OID {leaf_oid} is not a leaf partition") from None

    def tables(self) -> Iterator[TableDescriptor]:
        return iter(self._tables_by_name.values())

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and name in self._tables_by_name
