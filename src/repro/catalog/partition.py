"""Partitioning model: the functions ``f_T`` and ``f*_T`` of Section 2.1.

A table is *logically* partitioned on one key per level.  Each level is a
:class:`PartitionLevel`: a key column plus a list of named, mutually
disjoint :class:`IntervalSet` constraints (range partitioning produces
half-open intervals, categorical/list partitioning produces point sets —
both are the ``pk ∈ ∪(a, b)`` form of Section 3.2).

Multi-level (hierarchical) partitioning (Section 2.4) composes levels
uniformly, exactly like the paper's Figure 9: a 24-month × 2-region scheme
yields 48 leaves.  Leaves are identified by a *leaf id* — the tuple of
per-level slot indices — and the catalog assigns each leaf an OID.

Two functions define the model:

* ``route`` is ``f_T``: maps a tuple's partition-key values to the leaf
  that must store it, or ``None`` (the invalid partition ⊥).
* ``select`` is ``f*_T``: maps per-level predicates (as IntervalSets) to
  the set of leaf ids that *may* contain satisfying tuples.  Levels with no
  predicate keep all slots, so ``select`` degrades gracefully to "all
  leaves" — the trivially correct answer the paper notes always exists.
"""

from __future__ import annotations

import bisect
import datetime
from typing import Any, Iterable, Iterator, Mapping, Sequence

from ..errors import PartitionError
from ..types import add_months
from .constraints import Interval, IntervalSet

LeafId = tuple[int, ...]


class PartitionSlot:
    """One named partition at one level, with its check constraint."""

    __slots__ = ("name", "constraint")

    def __init__(self, name: str, constraint: IntervalSet):
        if constraint.is_empty:
            raise PartitionError(f"partition {name!r} has an empty constraint")
        self.name = name
        self.constraint = constraint

    def __repr__(self) -> str:
        return f"PartitionSlot({self.name}: {self.constraint})"


class PartitionLevel:
    """One level of a (possibly hierarchical) partitioning scheme."""

    def __init__(self, key: str, slots: Sequence[PartitionSlot]):
        if not slots:
            raise PartitionError(f"partition level on {key!r} has no partitions")
        self.key = key
        self.slots: tuple[PartitionSlot, ...] = tuple(slots)
        self._check_disjoint()
        # Fast path for the common case: contiguous pure-range slots can be
        # routed with binary search instead of a linear scan.
        self._range_bounds = self._contiguous_range_bounds()

    def _check_disjoint(self) -> None:
        for i, a in enumerate(self.slots):
            for b in self.slots[i + 1 :]:
                if a.constraint.overlaps(b.constraint):
                    raise PartitionError(
                        f"partitions {a.name!r} and {b.name!r} on key "
                        f"{self.key!r} have overlapping constraints"
                    )

    def _contiguous_range_bounds(self) -> list | None:
        """If every slot is a single interval ``[lo_i, lo_{i+1})`` in order,
        return the list of low bounds for bisect routing; else ``None``."""
        lows = []
        prev_hi = None
        for slot in self.slots:
            if len(slot.constraint) != 1:
                return None
            iv = slot.constraint.intervals[0]
            if iv.lo is None or iv.hi is None:
                return None
            if not iv.lo_inclusive or iv.hi_inclusive:
                return None
            if prev_hi is not None and iv.lo != prev_hi:
                return None
            lows.append(iv.lo)
            prev_hi = iv.hi
        return lows

    def route(self, value: Any) -> int | None:
        """``f_T`` restricted to this level: slot index for ``value``, or
        ``None`` when the value maps to the invalid partition ⊥."""
        if value is None:
            return None
        if self._range_bounds is not None:
            idx = bisect.bisect_right(self._range_bounds, value) - 1
            if idx < 0:
                return None
            if self.slots[idx].constraint.contains(value):
                return idx
            return None
        for idx, slot in enumerate(self.slots):
            if slot.constraint.contains(value):
                return idx
        return None

    def select(self, predicate: IntervalSet | None) -> list[int]:
        """``f*_T`` restricted to this level: indices of slots whose
        constraint overlaps ``predicate`` (all slots when no predicate)."""
        if predicate is None or predicate.is_universe:
            return list(range(len(self.slots)))
        return [
            idx
            for idx, slot in enumerate(self.slots)
            if slot.constraint.overlaps(predicate)
        ]

    def __len__(self) -> int:
        return len(self.slots)

    def same_slots(self, other: "PartitionLevel") -> bool:
        """Whether both levels split the domain identically (constraint-wise,
        ignoring names and key columns) — the compatibility requirement for
        partition-wise joins."""
        if len(self.slots) != len(other.slots):
            return False
        return all(
            a.constraint == b.constraint
            for a, b in zip(self.slots, other.slots)
        )

    def __repr__(self) -> str:
        return f"PartitionLevel(key={self.key!r}, {len(self.slots)} parts)"


class PartitionScheme:
    """A complete (multi-level) partitioning scheme for one table."""

    def __init__(self, levels: Sequence[PartitionLevel]):
        if not levels:
            raise PartitionError("partition scheme needs at least one level")
        keys = [lvl.key for lvl in levels]
        if len(set(keys)) != len(keys):
            raise PartitionError("partition levels must use distinct keys")
        self.levels: tuple[PartitionLevel, ...] = tuple(levels)

    # -- shape ----------------------------------------------------------------

    @property
    def keys(self) -> tuple[str, ...]:
        return tuple(lvl.key for lvl in self.levels)

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def num_leaves(self) -> int:
        n = 1
        for lvl in self.levels:
            n *= len(lvl)
        return n

    def leaf_ids(self) -> Iterator[LeafId]:
        """All leaf ids in lexicographic order."""

        def expand(prefix: LeafId, depth: int) -> Iterator[LeafId]:
            if depth == len(self.levels):
                yield prefix
                return
            for idx in range(len(self.levels[depth])):
                yield from expand(prefix + (idx,), depth + 1)

        return expand((), 0)

    def leaf_name(self, leaf: LeafId) -> str:
        return "/".join(
            self.levels[d].slots[idx].name for d, idx in enumerate(leaf)
        )

    def leaf_constraints(self, leaf: LeafId) -> dict[str, IntervalSet]:
        """The conjunction of per-level constraints identifying this leaf."""
        return {
            self.levels[d].key: self.levels[d].slots[idx].constraint
            for d, idx in enumerate(leaf)
        }

    # -- f_T and f*_T ----------------------------------------------------------

    def route(self, key_values: Mapping[str, Any]) -> LeafId | None:
        """``f_T``: the leaf a tuple with the given partition-key values
        belongs to, or ``None`` for the invalid partition ⊥."""
        leaf: list[int] = []
        for lvl in self.levels:
            idx = lvl.route(key_values.get(lvl.key))
            if idx is None:
                return None
            leaf.append(idx)
        return tuple(leaf)

    def select(
        self, predicates: Mapping[str, IntervalSet] | None = None
    ) -> list[LeafId]:
        """``f*_T``: all leaf ids that may contain tuples satisfying the
        given per-key predicates.  Missing keys mean "no restriction"."""
        predicates = predicates or {}
        per_level = [lvl.select(predicates.get(lvl.key)) for lvl in self.levels]
        leaves: list[LeafId] = [()]
        for indices in per_level:
            leaves = [leaf + (idx,) for leaf in leaves for idx in indices]
        return leaves

    def compatible_with(self, other: "PartitionScheme") -> bool:
        """Whether two schemes partition identically level by level
        (constraint-equal slots) — tables so partitioned can be joined
        partition-wise on their keys."""
        if self.num_levels != other.num_levels:
            return False
        return all(
            a.same_slots(b) for a, b in zip(self.levels, other.levels)
        )

    def __repr__(self) -> str:
        shape = " x ".join(f"{lvl.key}[{len(lvl)}]" for lvl in self.levels)
        return f"PartitionScheme({shape})"


# -- convenience constructors for common schemes -------------------------------


def range_level(
    key: str,
    bounds: Sequence[Any],
    names: Sequence[str] | None = None,
) -> PartitionLevel:
    """A range level with half-open slots ``[bounds[i], bounds[i+1])``.

    ``bounds`` must be strictly increasing and have at least two entries.
    """
    if len(bounds) < 2:
        raise PartitionError("range_level needs at least two bounds")
    slots = []
    for i, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
        if not lo < hi:
            raise PartitionError(f"range bounds not increasing at index {i}")
        name = names[i] if names else f"{key}_{i}"
        slots.append(PartitionSlot(name, IntervalSet.of(Interval(lo, hi))))
    return PartitionLevel(key, slots)


def list_level(
    key: str,
    groups: Sequence[tuple[str, Iterable[Any]]],
) -> PartitionLevel:
    """A categorical level: each ``(name, values)`` group is one partition."""
    slots = [
        PartitionSlot(name, IntervalSet.points(values)) for name, values in groups
    ]
    return PartitionLevel(key, slots)


def monthly_range_level(
    key: str, start: datetime.date, months: int
) -> PartitionLevel:
    """Monthly date partitions starting at the first of ``start``'s month —
    the paper's Figure 1 scheme (e.g. 24 monthly partitions of ``orders``)."""
    first = start.replace(day=1)
    bounds = [add_months(first, i) for i in range(months + 1)]
    names = [b.strftime("%b%Y").lower() for b in bounds[:-1]]
    return range_level(key, bounds, names)


def uniform_int_level(
    key: str, lo: int, hi: int, parts: int
) -> PartitionLevel:
    """``parts`` equal-width integer ranges covering ``[lo, hi)``.

    Used by the synthetic R/S workloads of Section 4.4.2; the last slot
    absorbs any remainder so the level always covers the full range.
    """
    if parts <= 0 or hi <= lo:
        raise PartitionError("uniform_int_level needs parts > 0 and hi > lo")
    width = max(1, (hi - lo) // parts)
    bounds = [lo + i * width for i in range(parts)]
    bounds.append(hi)
    if len(bounds) != parts + 1 or any(a >= b for a, b in zip(bounds, bounds[1:])):
        raise PartitionError(
            f"cannot split [{lo}, {hi}) into {parts} non-empty ranges"
        )
    return range_level(key, bounds)
