"""Interval algebra for partition constraints and partition selection.

Section 3.2 of the paper observes that every partition's check constraint can
be written in the form ``pk ∈ ∪_i (a_i1, a_ik)`` where each ``(a_i1, a_ik)``
is an open, closed, or half-open interval, possibly open-ended; categorical
partitioning is the degenerate case where an interval's start and end
coincide.  This module implements exactly that representation:

* :class:`Interval` — a single interval with optional open ends.
* :class:`IntervalSet` — a normalized union of disjoint, sorted intervals.

The partition selection function ``f*_T`` (Section 2.1) is realised by
deriving an :class:`IntervalSet` from a predicate on the partitioning key
(see :mod:`repro.expr.analysis`) and intersecting it with each partition's
constraint: a partition may contain satisfying tuples iff the intersection
is non-empty.

Values inside one interval set must be mutually comparable (same column
type); the algebra itself is type-agnostic.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

from ..errors import PartitionError

_NEG_INF = object()
_POS_INF = object()


def _lo_key(interval: "Interval") -> tuple:
    """Sort key placing unbounded-low intervals first and, for equal lows,
    inclusive bounds before exclusive ones."""
    if interval.lo is None:
        return (0, 0, 0)
    return (1, _Orderable(interval.lo), 0 if interval.lo_inclusive else 1)


class _Orderable:
    """Wrapper making heterogeneous-but-comparable values sortable."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Orderable") -> bool:
        return self.value < other.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Orderable) and self.value == other.value

    def __hash__(self) -> int:
        return hash(self.value)


class Interval:
    """A single interval over an ordered domain.

    ``lo is None`` means unbounded below, ``hi is None`` unbounded above.
    A point value ``v`` is ``Interval.point(v)`` — closed on both sides.
    Empty intervals cannot be constructed; use :data:`IntervalSet.EMPTY`.
    """

    __slots__ = ("lo", "hi", "lo_inclusive", "hi_inclusive")

    def __init__(
        self,
        lo: Any,
        hi: Any,
        lo_inclusive: bool = True,
        hi_inclusive: bool = False,
    ):
        if lo is not None and hi is not None:
            if hi < lo:
                raise PartitionError(f"interval bounds out of order: [{lo}, {hi}]")
            if hi == lo and not (lo_inclusive and hi_inclusive):
                raise PartitionError(
                    f"degenerate interval at {lo!r} must be closed on both sides"
                )
        self.lo = lo
        self.hi = hi
        self.lo_inclusive = lo_inclusive if lo is not None else False
        self.hi_inclusive = hi_inclusive if hi is not None else False

    # -- constructors -----------------------------------------------------

    @staticmethod
    def point(value: Any) -> "Interval":
        """The single-value interval ``[value, value]`` (categorical case)."""
        if value is None:
            raise PartitionError("NULL cannot be an interval bound")
        return Interval(value, value, True, True)

    @staticmethod
    def at_least(value: Any) -> "Interval":
        return Interval(value, None, True, False)

    @staticmethod
    def greater_than(value: Any) -> "Interval":
        return Interval(value, None, False, False)

    @staticmethod
    def at_most(value: Any) -> "Interval":
        return Interval(None, value, False, True)

    @staticmethod
    def less_than(value: Any) -> "Interval":
        return Interval(None, value, False, False)

    @staticmethod
    def unbounded() -> "Interval":
        return Interval(None, None)

    # -- predicates --------------------------------------------------------

    def contains(self, value: Any) -> bool:
        """Whether ``value`` lies inside this interval.  NULL never matches."""
        if value is None:
            return False
        if self.lo is not None:
            if value < self.lo:
                return False
            if value == self.lo and not self.lo_inclusive:
                return False
        if self.hi is not None:
            if value > self.hi:
                return False
            if value == self.hi and not self.hi_inclusive:
                return False
        return True

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one point."""
        return self._intersect(other) is not None

    def _intersect(self, other: "Interval") -> "Interval | None":
        lo, lo_inc = self.lo, self.lo_inclusive
        if other.lo is not None and (lo is None or other.lo > lo):
            lo, lo_inc = other.lo, other.lo_inclusive
        elif other.lo is not None and other.lo == lo:
            lo_inc = lo_inc and other.lo_inclusive

        hi, hi_inc = self.hi, self.hi_inclusive
        if other.hi is not None and (hi is None or other.hi < hi):
            hi, hi_inc = other.hi, other.hi_inclusive
        elif other.hi is not None and other.hi == hi:
            hi_inc = hi_inc and other.hi_inclusive

        if lo is not None and hi is not None:
            if hi < lo:
                return None
            if hi == lo and not (lo_inc and hi_inc):
                return None
        return Interval(lo, hi, lo_inc, hi_inc)

    def _touches_or_overlaps(self, other: "Interval") -> bool:
        """Whether the union of the two intervals is a single interval.

        True when they overlap or are adjacent (e.g. ``[1,5)`` and ``[5,9)``).
        Assumes ``self`` sorts before ``other`` by low bound.
        """
        if self.hi is None:
            return True
        if other.lo is None:
            return True
        if other.lo < self.hi:
            return True
        if other.lo == self.hi:
            return self.hi_inclusive or other.lo_inclusive
        return False

    # -- misc ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Interval):
            return NotImplemented
        return (
            self.lo == other.lo
            and self.hi == other.hi
            and self.lo_inclusive == other.lo_inclusive
            and self.hi_inclusive == other.hi_inclusive
        )

    def __hash__(self) -> int:
        return hash((self.lo, self.hi, self.lo_inclusive, self.hi_inclusive))

    def __repr__(self) -> str:
        lo = "(-inf" if self.lo is None else ("[" if self.lo_inclusive else "(") + repr(self.lo)
        hi = "+inf)" if self.hi is None else repr(self.hi) + ("]" if self.hi_inclusive else ")")
        return f"{lo}, {hi}"


class IntervalSet:
    """A normalized (sorted, disjoint, non-adjacent) union of intervals.

    This is the canonical representation both of a partition's check
    constraint and of the value set admitted by a predicate on the
    partitioning key.  All set operations return new, normalized sets.
    """

    __slots__ = ("intervals",)

    EMPTY: "IntervalSet"
    ALL: "IntervalSet"

    def __init__(self, intervals: Sequence[Interval] = ()):
        self.intervals: tuple[Interval, ...] = self._normalize(intervals)

    @staticmethod
    def _normalize(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
        items = sorted(intervals, key=_lo_key)
        merged: list[Interval] = []
        for interval in items:
            if merged and merged[-1]._touches_or_overlaps(interval):
                prev = merged[-1]
                hi, hi_inc = prev.hi, prev.hi_inclusive
                if prev.hi is not None and (
                    interval.hi is None or interval.hi > prev.hi
                ):
                    hi, hi_inc = interval.hi, interval.hi_inclusive
                elif interval.hi == prev.hi:
                    hi_inc = hi_inc or interval.hi_inclusive
                merged[-1] = Interval(prev.lo, hi, prev.lo_inclusive, hi_inc)
            else:
                merged.append(interval)
        return tuple(merged)

    # -- constructors -------------------------------------------------------

    @staticmethod
    def of(*intervals: Interval) -> "IntervalSet":
        return IntervalSet(intervals)

    @staticmethod
    def points(values: Iterable[Any]) -> "IntervalSet":
        """The set {v1, v2, ...} — used for categorical (list) partitions
        and ``IN`` predicates."""
        return IntervalSet([Interval.point(v) for v in values])

    # -- predicates ----------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.intervals

    @property
    def is_universe(self) -> bool:
        return len(self.intervals) == 1 and self.intervals[0] == Interval.unbounded()

    def contains(self, value: Any) -> bool:
        return any(iv.contains(value) for iv in self.intervals)

    def overlaps(self, other: "IntervalSet") -> bool:
        """Whether the two sets share at least one point.

        This is the heart of partition selection: a partition with
        constraint ``C`` may hold tuples satisfying predicate set ``P``
        iff ``C.overlaps(P)``.
        """
        return not self.intersect(other).is_empty

    # -- algebra --------------------------------------------------------------

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        result: list[Interval] = []
        for a in self.intervals:
            for b in other.intervals:
                got = a._intersect(b)
                if got is not None:
                    result.append(got)
        return IntervalSet(result)

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(list(self.intervals) + list(other.intervals))

    def complement(self) -> "IntervalSet":
        """The complement of this set within the unbounded domain."""
        if self.is_empty:
            return IntervalSet.ALL
        gaps: list[Interval] = []
        first = self.intervals[0]
        if first.lo is not None:
            gaps.append(Interval(None, first.lo, False, not first.lo_inclusive))
        for prev, nxt in zip(self.intervals, self.intervals[1:]):
            gaps.append(
                Interval(
                    prev.hi,
                    nxt.lo,
                    not prev.hi_inclusive,
                    not nxt.lo_inclusive,
                )
            )
        last = self.intervals[-1]
        if last.hi is not None:
            gaps.append(Interval(last.hi, None, not last.hi_inclusive, False))
        return IntervalSet(gaps)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersect(other.complement())

    def covers(self, other: "IntervalSet") -> bool:
        """Whether ``other`` is a subset of this set (constraint subsumption)."""
        return other.difference(self).is_empty

    # -- misc -------------------------------------------------------------------

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def __len__(self) -> int:
        return len(self.intervals)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __repr__(self) -> str:
        if self.is_empty:
            return "{}"
        return " ∪ ".join(repr(iv) for iv in self.intervals)


IntervalSet.EMPTY = IntervalSet()
IntervalSet.ALL = IntervalSet([Interval.unbounded()])
