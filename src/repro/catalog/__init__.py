"""Catalog layer: schemas, partition model, table registry.

The partition model implements the paper's Section 2.1 functions ``f_T``
(tuple routing) and ``f*_T`` (partition selection) over single- and
multi-level schemes, with constraints in the ``pk ∈ ∪(a, b)`` interval form
of Section 3.2.
"""

from .catalog import Catalog, DistributionPolicy, TableDescriptor
from .constraints import Interval, IntervalSet
from .partition import (
    LeafId,
    PartitionLevel,
    PartitionScheme,
    PartitionSlot,
    list_level,
    monthly_range_level,
    range_level,
    uniform_int_level,
)
from .schema import Column, TableSchema

__all__ = [
    "Catalog",
    "Column",
    "DistributionPolicy",
    "Interval",
    "IntervalSet",
    "LeafId",
    "PartitionLevel",
    "PartitionScheme",
    "PartitionSlot",
    "TableDescriptor",
    "TableSchema",
    "list_level",
    "monthly_range_level",
    "range_level",
    "uniform_int_level",
]
