"""Figure 22 (companion experiment) — recovery time vs checkpoint size.

Not a figure from the paper: the durability subsystem's core trade-off,
measured the way the paper measures its optimizations.  For a range of
data sizes, recover the same database twice — once from the full WAL
(no checkpoint: every record replays) and once from a checkpoint with an
empty tail (no records replay) — and report the on-disk footprint next
to the restart wall clock.  The claim: checkpointed restart time is flat
in the WAL history it replaced, while WAL-only replay grows linearly
with it.

All ``*_seconds`` leaves are wall clocks and therefore report-only in
``tools/check_bench_regression.py``; the replayed-record counters are
asserted here, not gated, because row counts scale with the matrix.
"""

from __future__ import annotations

import datetime
import shutil
import tempfile
import time

START = datetime.date(2013, 1, 1)
SCALES = [1_000, 4_000]


def test_fig22_recovery_time(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _build(data_dir: str, rows: int):
    from repro import Database
    from repro import types as t
    from repro.catalog import (
        DistributionPolicy,
        PartitionScheme,
        TableSchema,
        monthly_range_level,
    )

    db = Database(num_segments=4, data_dir=data_dir)
    db.create_table(
        "orders",
        TableSchema.of(("id", t.INT), ("date", t.DATE), ("amount", t.FLOAT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", START, 12)]
        ),
    )
    db.insert(
        "orders",
        [
            (i, START + datetime.timedelta(days=i % 360), float(i))
            for i in range(rows)
        ],
    )
    db.sql("DELETE FROM orders WHERE id % 10 = 0")
    return db


def _recover_once(data_dir: str, rows: int):
    from repro import Database

    begin = time.perf_counter()
    db = Database(num_segments=4, data_dir=data_dir)
    elapsed = time.perf_counter() - begin
    assert db.sql("SELECT count(*) FROM orders").rows == [(rows - rows // 10,)]
    stats = db.durability.stats_dict()
    db.durability.close()
    return elapsed, stats


def _report():
    from ._helpers import emit, emit_json, format_table

    series = []
    for rows in SCALES:
        base = tempfile.mkdtemp(prefix="repro-fig22-")
        try:
            db = _build(base, rows)
            wal_bytes = db.durability.wal_size_bytes()
            db.durability.close()
            replay_seconds, stats = _recover_once(base, rows)
            replayed = stats["recovery_replayed_records"]
            assert replayed > 0, "WAL-only restart must replay the log"

            # checkpoint, then recover again: snapshot only, empty tail
            db = _build_checkpoint(base)
            checkpoint_bytes = db.durability.last_checkpoint_bytes
            db.durability.close()
            checkpoint_seconds, stats = _recover_once(base, rows)
            assert stats["recovery_replayed_records"] == 0, (
                "checkpointed restart must not replay the truncated log"
            )
            series.append(
                {
                    "rows": rows,
                    "wal_bytes": wal_bytes,
                    "wal_records_replayed": replayed,
                    "wal_replay_seconds": replay_seconds,
                    "checkpoint_bytes": checkpoint_bytes,
                    "checkpoint_recovery_seconds": checkpoint_seconds,
                }
            )
        finally:
            shutil.rmtree(base, ignore_errors=True)

    emit(
        "fig22_recovery_time",
        format_table(
            [
                "rows",
                "wal B",
                "replayed",
                "wal replay s",
                "ckpt B",
                "ckpt recovery s",
            ],
            [
                [
                    point["rows"],
                    point["wal_bytes"],
                    point["wal_records_replayed"],
                    f"{point['wal_replay_seconds']:.4f}",
                    point["checkpoint_bytes"],
                    f"{point['checkpoint_recovery_seconds']:.4f}",
                ]
                for point in series
            ],
        ),
    )
    emit_json("fig22_recovery_time", {"series": series})


def _build_checkpoint(data_dir: str):
    """Reopen the existing data dir and checkpoint it (truncates the WAL:
    every copy is up, nothing is behind)."""
    from repro import Database

    db = Database(num_segments=4, data_dir=data_dir)
    summary = db.checkpoint()
    assert summary["wal_truncated"] is True
    return db
