"""Figure 19 (this repo's extension) — parallel segment execution speedup.

The paper's experiments (Section 4) run on a Greenplum cluster whose
segments genuinely execute in parallel; the simulator historically ran
segment instances back-to-back on one thread.  This benchmark measures
what the thread-pool :class:`~repro.executor.scheduler.SegmentScheduler`
buys back on a multi-slice partitioned join once the storage layer
charges a per-partition-file I/O latency (``StorageManager.io_latency_s``
— the sleep releases the GIL, which is exactly the component a real MPP
executor overlaps across segments).

Assertions: at 4 workers on a 4-segment database the join must run at
least 1.5x faster than the serial backend, with byte-identical rows.
"""

from __future__ import annotations

import datetime

SEGMENTS = 4
WORKERS = 4
PARTS = 12
ROWS = 1200
IO_LATENCY_S = 0.002
START = datetime.date(2013, 1, 1)

JOIN_SQL = (
    "SELECT count(*), sum(o.amount) FROM orders o, dim d "
    "WHERE o.id = d.id AND d.tag = 't1'"
)


def _build_db():
    from repro import Database
    from repro import types as t
    from repro.catalog import (
        DistributionPolicy,
        PartitionScheme,
        TableSchema,
        monthly_range_level,
    )

    db = Database(num_segments=SEGMENTS)
    db.create_table(
        "orders",
        TableSchema.of(("id", t.INT), ("date", t.DATE), ("amount", t.FLOAT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", START, PARTS)]
        ),
    )
    db.create_table(
        "dim",
        TableSchema.of(("id", t.INT), ("tag", t.TEXT)),
        distribution=DistributionPolicy.hashed("id"),
    )
    db.insert(
        "orders",
        [
            (i, START + datetime.timedelta(days=i % 360), float(i))
            for i in range(ROWS)
        ],
    )
    db.insert("dim", [(i, f"t{i % 4}") for i in range(ROWS)])
    db.analyze()
    return db


def test_fig19_parallel_speedup(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    from ._helpers import emit, emit_json, format_table, timed

    db = _build_db()
    # Per-scan simulated I/O: each DynamicScan leaf and each dim scan pays
    # this before its first row.  It is the honest overlap opportunity —
    # everything else is GIL-bound Python.
    db.storage.io_latency_s = IO_LATENCY_S

    serial_rows = db.sql(JOIN_SQL).rows
    parallel_rows = db.sql(JOIN_SQL, workers=WORKERS).rows
    assert parallel_rows == serial_rows, "parallelism changed the answer"

    measurements = []
    for workers in (1, 2, WORKERS):
        elapsed = timed(lambda w=workers: db.sql(JOIN_SQL, workers=w))
        measurements.append({"workers": workers, "seconds": elapsed})
    serial_s = measurements[0]["seconds"]
    for m in measurements:
        m["speedup"] = serial_s / m["seconds"] if m["seconds"] else 0.0

    parallel_stats = db.sql(
        JOIN_SQL, analyze=True, workers=WORKERS
    ).metrics.parallel_stats()
    # every db.sql above fed the live latency histogram (report-only in
    # the regression gate: wall clocks never gate)
    percentiles = db.live.query_seconds.percentiles()

    emit(
        "fig19_parallel_speedup",
        format_table(
            ["workers", "best-of-3", "speedup"],
            [
                [
                    m["workers"],
                    f"{m['seconds'] * 1000:.1f} ms",
                    f"{m['speedup']:.2f}x",
                ]
                for m in measurements
            ],
        )
        + [
            "",
            f"segments={SEGMENTS}  partitions={PARTS}  "
            f"io_latency={IO_LATENCY_S * 1000:.1f} ms/scan",
            f"overlap at {WORKERS} workers: "
            f"{parallel_stats['overlap']:.2f}x "
            f"({parallel_stats['instance_busy_seconds'] * 1000:.1f} ms of "
            "segment work)",
            f"statement latency: p50 {percentiles['p50_s'] * 1000:.1f} ms  "
            f"p95 {percentiles['p95_s'] * 1000:.1f} ms  "
            f"p99 {percentiles['p99_s'] * 1000:.1f} ms",
        ],
    )
    emit_json(
        "fig19_parallel_speedup",
        {
            "segments": SEGMENTS,
            "partitions": PARTS,
            "io_latency_s": IO_LATENCY_S,
            "measurements": measurements,
            "overlap": parallel_stats["overlap"],
            "latency_percentiles": percentiles,
        },
    )

    at_four = measurements[-1]
    assert at_four["workers"] == WORKERS
    # The acceptance bar: >= 1.5x at 4 workers on 4 segments.
    assert at_four["speedup"] >= 1.5, (
        f"parallel speedup {at_four['speedup']:.2f}x below the 1.5x bar"
    )
    # And the scheduler genuinely overlapped segment work.
    assert parallel_stats["overlap"] is not None
    assert parallel_stats["overlap"] > 1.0
