"""Paper Figure 18(a) — Plan size, static partition elimination.

``SELECT * FROM lineitem WHERE l_shipdate < X`` with X chosen to select
1% / 25% / 50% / 75% / 100% of the partitions.  Planner plan size grows
linearly with the number of partitions selected (they are listed in the
plan); Orca's stays constant.
"""

from __future__ import annotations

from repro.workloads.tpch import build_lineitem_database, shipdate_for_fraction

from ._helpers import emit, emit_json, format_table

PARTS = 84  # monthly scenario
FRACTIONS = (0.01, 0.25, 0.50, 0.75, 1.00)


def test_fig18a_plan_sizes(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    db = build_lineitem_database(PARTS, row_count=400, num_segments=2)
    rows = []
    planner_sizes, orca_sizes = [], []
    for fraction in FRACTIONS:
        cutoff = shipdate_for_fraction(fraction)
        sql = f"SELECT * FROM lineitem WHERE l_shipdate < '{cutoff.isoformat()}'"
        planner_plan = db.plan(sql, optimizer="planner")
        orca_plan = db.plan(sql)
        selected = sum(
            1
            for op in planner_plan.walk()
            if type(op).__name__ == "LeafScan"
        )
        planner_sizes.append(planner_plan.size_bytes())
        orca_sizes.append(orca_plan.size_bytes())
        rows.append(
            [
                f"{fraction * 100:.0f}%",
                selected,
                planner_plan.size_bytes(),
                orca_plan.size_bytes(),
                orca_plan.dispatched_size_bytes(),
            ]
        )
    emit(
        "fig18a_static_plan_size",
        format_table(
            [
                "% partitions",
                "#leaves listed",
                "planner bytes",
                "orca bytes",
                "orca dispatched bytes",
            ],
            rows,
        ),
    )
    emit_json(
        "fig18a_static_plan_size",
        {
            "fractions": list(FRACTIONS),
            "planner_bytes": planner_sizes,
            "orca_bytes": orca_sizes,
        },
    )

    # Planner grows roughly linearly: 100% plan is many times the 1% plan.
    assert planner_sizes[-1] / planner_sizes[0] > 10
    # Orca's plan is constant across selected fractions.
    assert max(orca_sizes) == min(orca_sizes)
    # And at full selection Planner's plan dwarfs Orca's.
    assert planner_sizes[-1] > 5 * orca_sizes[-1]
