"""Paper Figure 17 — Relative improvement in execution time when partition
selection is enabled.

The whole workload runs in Orca twice — partition selection enabled vs
disabled, everything else identical — and the per-query improvement is
reported as a percentage of the disabled runtime (50% = ran in half the
time), with queries grouped by their disabled runtime into short / medium /
long blocks like the paper's x-axis.

The paper's shape: improvements across the board, more than half the
queries above 50%, over a quarter above 70%, with a few outliers.  Wall
clocks in a Python simulator are noisy, so the assertions also lean on the
deterministic rows-scanned reduction that drives the speedup.
"""

from __future__ import annotations


def test_fig17_selection_speedup(benchmark, workload_run):
    benchmark.pedantic(_report, args=(workload_run,), rounds=1, iterations=1)


def _report(workload_run):
    from ._helpers import emit, emit_json, format_table

    measurements = []
    for query in workload_run.queries:
        entry = workload_run.measurements[query.name]
        enabled = entry["orca"]
        disabled = entry["orca_no_selection"]
        time_improvement = (
            (disabled["elapsed"] - enabled["elapsed"])
            / disabled["elapsed"]
            * 100
            if disabled["elapsed"]
            else 0.0
        )
        rows_improvement = (
            (disabled["rows_scanned"] - enabled["rows_scanned"])
            / disabled["rows_scanned"]
            * 100
            if disabled["rows_scanned"]
            else 0.0
        )
        measurements.append(
            {
                "name": query.name,
                "kind": query.kind,
                "disabled_s": disabled["elapsed"],
                "time_improvement": time_improvement,
                "rows_improvement": rows_improvement,
                # optimization wall time, from the traced optimize span
                "optimize_s": enabled["optimize_seconds"],
                "optimize_disabled_s": disabled["optimize_seconds"],
            }
        )

    # Group by disabled runtime, mirroring the paper's query blocks.
    measurements.sort(key=lambda m: m["disabled_s"])
    third = max(1, len(measurements) // 3)
    for index, m in enumerate(measurements):
        if index < third:
            m["block"] = "short-running"
        elif index < 2 * third:
            m["block"] = "medium"
        else:
            m["block"] = "long-running"

    rows = [
        [
            m["name"],
            m["block"],
            m["kind"],
            f"{m['disabled_s'] * 1000:.1f} ms",
            f"{m['time_improvement']:+.0f}%",
            f"{m['rows_improvement']:+.0f}%",
            f"{m['optimize_s'] * 1000:.2f} ms",
        ]
        for m in measurements
    ]
    emit(
        "fig17_selection_speedup",
        format_table(
            [
                "query",
                "block",
                "kind",
                "time w/o selection",
                "time improvement",
                "rows-scanned improvement",
                "opt time",
            ],
            rows,
        ),
    )
    emit_json("fig17_selection_speedup", {"queries": measurements})
    # Partition selection adds optimizer work but never pathologically:
    # aggregate planning time stays within 3x of the no-selection baseline.
    total_opt = sum(m["optimize_s"] for m in measurements)
    total_opt_disabled = sum(m["optimize_disabled_s"] for m in measurements)
    assert total_opt > 0.0 and total_opt_disabled > 0.0
    assert total_opt < total_opt_disabled * 3

    eliminating = [
        m for m in measurements if m["kind"] in ("static", "dynamic")
    ]
    # Every eliminating query scans fewer rows with selection on.
    assert all(m["rows_improvement"] > 0 for m in eliminating)
    # Paper: "more than half of the queries improved above 50%" — we assert
    # it on the deterministic rows-scanned metric.
    above_50 = sum(1 for m in eliminating if m["rows_improvement"] > 50)
    assert above_50 / len(eliminating) > 0.5
    above_70 = sum(1 for m in eliminating if m["rows_improvement"] > 70)
    assert above_70 / len(eliminating) > 0.25
    # Wall-clock direction: eliminating queries are faster in aggregate.
    total_enabled = sum(
        workload_run.measurements[m["name"]]["orca"]["elapsed"]
        for m in eliminating
    )
    total_disabled = sum(
        workload_run.measurements[m["name"]]["orca_no_selection"]["elapsed"]
        for m in eliminating
    )
    # (5% tolerance: per-query wall clocks are milliseconds in the simulator)
    assert total_enabled < total_disabled * 1.05
