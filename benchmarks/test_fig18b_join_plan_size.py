"""Paper Figure 18(b) — Plan size, dynamic partition elimination.

``SELECT * FROM R, S WHERE R.b = S.b AND S.a < 100`` with both tables
partitioned on ``b``, varying the partition count (the paper sweeps 50 to
300).  The Planner supports run-time elimination through a parameter but
must still list every partition, so its plan grows linearly; the Orca plan
stays flat (the paper notes its *measured* size only moves because of the
partition metadata shipped to segments — reported here as the dispatched
size).
"""

from __future__ import annotations

from repro.workloads.synthetic import JOIN_QUERY, build_rs_database

from ._helpers import emit, emit_json, format_table

PART_COUNTS = (50, 100, 150, 200, 250, 300)


def test_fig18b_plan_sizes(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    rows = []
    planner_sizes, orca_sizes, dispatched = [], [], []
    for parts in PART_COUNTS:
        db = build_rs_database(num_parts=parts, rows_per_table=100)
        planner_plan = db.plan(JOIN_QUERY, optimizer="planner")
        orca_plan = db.plan(JOIN_QUERY)
        planner_sizes.append(planner_plan.size_bytes())
        orca_sizes.append(orca_plan.size_bytes())
        dispatched.append(orca_plan.dispatched_size_bytes())
        rows.append(
            [
                parts,
                planner_plan.size_bytes(),
                orca_plan.size_bytes(),
                orca_plan.dispatched_size_bytes(),
            ]
        )
    emit(
        "fig18b_join_plan_size",
        format_table(
            [
                "#partitions per table",
                "planner bytes",
                "orca bytes",
                "orca dispatched bytes",
            ],
            rows,
        ),
    )
    emit_json(
        "fig18b_join_plan_size",
        {
            "part_counts": list(PART_COUNTS),
            "planner_bytes": planner_sizes,
            "orca_bytes": orca_sizes,
            "orca_dispatched_bytes": dispatched,
        },
    )

    # Planner: linear growth (6x partitions -> ~6x plan).
    assert planner_sizes[-1] / planner_sizes[0] > 4
    # Orca: the actual plan is independent of the partition count.
    assert max(orca_sizes) == min(orca_sizes)
    # The dispatched size (plan + metadata annex) shows the paper's mild
    # dependence on the partition count.
    assert dispatched[-1] > dispatched[0]
    # Crossover: Planner's plan is far larger at high partition counts.
    assert planner_sizes[-1] > 10 * orca_sizes[-1]
