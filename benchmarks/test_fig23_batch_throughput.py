"""Figure 23 (this repo's extension) — vectorized batch execution throughput.

The paper's executor model is row-at-a-time Volcano iterators; modern MPP
executors amortize interpretation overhead by pulling one *batch* of rows
per iterator call.  This benchmark measures what the batch pipeline
(``batch_size=1024``, the engine default) buys over the row path
(``batch_size=1``) on the two shapes the executor spends its life in:

* **scan+filter** — a full scan of a 12-partition fact table with a
  selective predicate, gathered to the coordinator;
* **partitioned hash join** — a dimension filter driving a redistributed
  hash join against the partitioned fact table, aggregated.

Reported as input-rows-per-second per workload per batch width.

Assertions: identical rows at both widths, identical deterministic
counters (partitions/rows scanned, motion rows/bytes — these gate hard in
CI via ``tools/check_bench_regression.py``), and the batch pipeline must
clear 2x on scan+filter and 1.5x on the join (wall-clock bars measured as
a ratio on the same machine; the absolute timings stay report-only).
"""

from __future__ import annotations

import random

SEGMENTS = 4
PARTS = 12
FACT_ROWS = 24000
DIM_KEYS = 1200
BATCH_SIZES = (1, 1024)

FILTER_SQL = "SELECT id, val FROM facts WHERE val > 25.0"
JOIN_SQL = (
    "SELECT count(*), sum(f.val) FROM facts f, dim d "
    "WHERE f.key = d.key AND d.grp = 3"
)

WORKLOADS = [
    ("scan+filter", FILTER_SQL),
    ("hash join", JOIN_SQL),
]

#: hard wall-clock ratio bars (same-machine ratio, so CI-stable)
SPEEDUP_BARS = {"scan+filter": 2.0, "hash join": 1.5}


def _build_db():
    from repro import Database
    from repro import types as t
    from repro.catalog import (
        DistributionPolicy,
        PartitionScheme,
        TableSchema,
        uniform_int_level,
    )

    db = Database(num_segments=SEGMENTS)
    db.create_table(
        "facts",
        TableSchema.of(("id", t.INT), ("key", t.INT), ("val", t.FLOAT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("key", 0, DIM_KEYS, PARTS)]
        ),
    )
    db.create_table(
        "dim",
        TableSchema.of(("key", t.INT), ("grp", t.INT)),
        distribution=DistributionPolicy.hashed("key"),
    )
    rng = random.Random(23)
    db.insert(
        "facts",
        [
            (i, rng.randrange(DIM_KEYS), round(rng.uniform(0, 50), 2))
            for i in range(FACT_ROWS)
        ],
    )
    db.insert("dim", [(k, k % 8) for k in range(DIM_KEYS)])
    db.analyze()
    return db


def test_fig23_batch_throughput(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    from ._helpers import emit, emit_json, format_table, timed

    db = _build_db()

    # -- correctness + deterministic counters at each width ------------------
    counters: dict[str, dict] = {}
    for name, sql in WORKLOADS:
        reference = db.sql(sql, analyze=True, batch_size=1)
        per_width: dict[str, dict] = {}
        for width in BATCH_SIZES:
            result = db.sql(sql, analyze=True, batch_size=width)
            assert sorted(result.rows, key=repr) == sorted(
                reference.rows, key=repr
            ), f"{name}: batch_size={width} changed the answer"
            motion = result.metrics.motion_stats()
            per_width[str(width)] = {
                "result_rows": len(result.rows),
                "partitions_scanned": result.metrics.partitions_scanned(),
                "rows_scanned": result.metrics.total_rows_scanned,
                "motion_rows": motion["rows_moved"],
                "motion_bytes": motion["bytes_moved"],
            }
        assert per_width["1"] == per_width[str(BATCH_SIZES[-1])], (
            f"{name}: batch width changed the measured counters"
        )
        counters[name] = per_width

    # -- throughput ----------------------------------------------------------
    measurements = []
    for name, sql in WORKLOADS:
        row_s = None
        for width in BATCH_SIZES:
            elapsed = timed(lambda s=sql, w=width: db.sql(s, batch_size=w))
            if width == 1:
                row_s = elapsed
            measurements.append(
                {
                    "workload": name,
                    "batch_size": width,
                    "seconds": elapsed,
                    "input_rows": FACT_ROWS,
                    "rows_per_second": FACT_ROWS / elapsed if elapsed else 0.0,
                    "speedup_vs_row": row_s / elapsed if elapsed else 0.0,
                }
            )

    emit(
        "fig23_batch_throughput",
        format_table(
            ["workload", "batch", "best-of-3", "rows/sec", "speedup"],
            [
                [
                    m["workload"],
                    m["batch_size"],
                    f"{m['seconds'] * 1000:.1f} ms",
                    f"{m['rows_per_second']:,.0f}",
                    f"{m['speedup_vs_row']:.2f}x",
                ]
                for m in measurements
            ],
        )
        + [
            "",
            f"segments={SEGMENTS}  partitions={PARTS}  "
            f"fact_rows={FACT_ROWS}",
        ],
    )
    emit_json(
        "fig23_batch_throughput",
        {
            "segments": SEGMENTS,
            "partitions": PARTS,
            "fact_rows": FACT_ROWS,
            "batch_sizes": list(BATCH_SIZES),
            "counters": counters,
            "measurements": measurements,
        },
    )

    for name, _ in WORKLOADS:
        batched = next(
            m
            for m in measurements
            if m["workload"] == name and m["batch_size"] == BATCH_SIZES[-1]
        )
        bar = SPEEDUP_BARS[name]
        assert batched["speedup_vs_row"] >= bar, (
            f"{name}: batch speedup {batched['speedup_vs_row']:.2f}x below "
            f"the {bar}x bar"
        )
