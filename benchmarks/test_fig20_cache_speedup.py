"""Figure 20 (this repo's extension) — partition-selection cache speedup.

The paper prunes partitions per query; for heavy repeated traffic the
next lever is not re-deriving that pruning on every call (ROADMAP:
fingerprint-keyed caching, "the single biggest lever for heavy repeated
traffic").  This benchmark drives a skewed hot-statement workload — a
small set of wide IN-list queries over a table with many partitions,
repeated with a skewed popularity distribution — and measures what
``cache='partitions'`` buys: compiling and evaluating the selector
program dominates wall time at this partition count, and a cache hit
replays the recorded OID sets instead.

Emitted counters (``workload``) are fully deterministic and gate hard in
``tools/check_bench_regression.py``; the wall clocks are report-only.

Assertions: >= 80% hit rate over the workload and >= 2x wall-clock
speedup with the cache on, with every statement answering byte-identically
to cache-off.
"""

from __future__ import annotations

import random

SEGMENTS = 4
PARTS = 192
DOMAIN = PARTS * 50  # 50-wide leaf ranges
ROWS = 2400
HOT_STATEMENTS = 16  # distinct statements in the pool
IN_LIST = 48  # keys per IN-list (wide: selector-evaluation heavy)
WORKLOAD = 100  # total queries per pass, drawn with skew


def _build_db():
    from repro import Database
    from repro import types as t
    from repro.catalog import (
        DistributionPolicy,
        PartitionScheme,
        TableSchema,
        uniform_int_level,
    )

    db = Database(num_segments=SEGMENTS)
    db.create_table(
        "facts",
        TableSchema.of(("id", t.INT), ("key", t.INT), ("val", t.INT)),
        distribution=DistributionPolicy.hashed("id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("key", 0, DOMAIN, PARTS)]
        ),
    )
    rng = random.Random(2020)
    db.insert(
        "facts",
        [
            (i, rng.randrange(DOMAIN), rng.randrange(100))
            for i in range(ROWS)
        ],
    )
    db.analyze()
    return db


def _workload() -> tuple[list[str], list[str]]:
    """The statement pool and the skewed schedule (both deterministic)."""
    rng = random.Random(414)
    pool = []
    for _ in range(HOT_STATEMENTS):
        keys = sorted(rng.sample(range(DOMAIN), IN_LIST))
        in_list = ", ".join(str(k) for k in keys)
        pool.append(
            f"SELECT count(*), sum(val) FROM facts WHERE key IN ({in_list})"
        )
    # Zipf-flavoured popularity: statement i gets weight ~ 1/(i+1); the
    # hottest statement dominates, the tail still appears at least once.
    weights = [1.0 / (i + 1) for i in range(HOT_STATEMENTS)]
    total = sum(weights)
    counts = [max(1, round(w / total * WORKLOAD)) for w in weights]
    schedule = [
        pool[i] for i, count in enumerate(counts) for _ in range(count)
    ]
    # trim/pad to exactly WORKLOAD queries, hottest first for padding
    del schedule[WORKLOAD:]
    while len(schedule) < WORKLOAD:
        schedule.append(pool[0])
    rng.shuffle(schedule)
    return pool, schedule


def test_fig20_cache_speedup(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    from ._helpers import emit, emit_json, format_table, timed

    db = _build_db()
    pool, schedule = _workload()

    # -- equivalence: the cache never changes an answer -------------------
    for sql in pool:
        cold = db.sql(sql, cache="partitions")  # stores
        warm = db.sql(sql, cache="partitions")  # replays
        off = db.sql(sql, cache="off")
        assert cold.rows == off.rows, "cold cached run changed the answer"
        assert warm.rows == off.rows, "cache replay changed the answer"

    # -- deterministic hit-rate counters over one clean pass --------------
    db.cache.clear()
    before = db.cache.partitions.to_dict()
    for sql in schedule:
        db.sql(sql, cache="partitions")
    after = db.cache.partitions.to_dict()
    hits = after["hits"] - before["hits"]
    misses = after["misses"] - before["misses"]
    stores = after["stores"] - before["stores"]
    hit_rate_pct = round(hits * 100 / (hits + misses))
    workload_counters = {
        "total_queries": WORKLOAD,
        "unique_queries": HOT_STATEMENTS,
        "hits": hits,
        "misses": misses,
        "stores": stores,
        "hit_rate_pct": hit_rate_pct,
    }

    # -- wall clock: one workload pass, cache off vs warm cache -----------
    def pass_off():
        for sql in schedule:
            db.sql(sql, cache="off")

    def pass_cached():
        for sql in schedule:
            db.sql(sql, cache="partitions")

    pass_cached()  # ensure every pool statement is warm before timing
    off_s = timed(pass_off)
    cached_s = timed(pass_cached)
    speedup = off_s / cached_s if cached_s else 0.0
    # every db.sql above fed the live latency histogram (report-only in
    # the regression gate: wall clocks never gate)
    percentiles = db.live.query_seconds.percentiles()

    emit(
        "fig20_cache_speedup",
        format_table(
            ["cache", "workload pass (best-of-3)", "speedup"],
            [
                ["off", f"{off_s * 1000:.1f} ms", "1.00x"],
                ["partitions", f"{cached_s * 1000:.1f} ms", f"{speedup:.2f}x"],
            ],
        )
        + [
            "",
            f"partitions={PARTS}  in-list={IN_LIST} keys  "
            f"workload={WORKLOAD} queries over {HOT_STATEMENTS} statements",
            f"hit rate: {hits}/{hits + misses} ({hit_rate_pct}%)  "
            f"stores: {stores}",
            f"statement latency: p50 {percentiles['p50_s'] * 1000:.1f} ms  "
            f"p95 {percentiles['p95_s'] * 1000:.1f} ms  "
            f"p99 {percentiles['p99_s'] * 1000:.1f} ms",
        ],
    )
    emit_json(
        "fig20_cache_speedup",
        {
            "partitions": PARTS,
            "in_list": IN_LIST,
            "workload": workload_counters,
            "cache_off_seconds": off_s,
            "cache_on_seconds": cached_s,
            "speedup": speedup,
            "latency_percentiles": percentiles,
        },
    )

    # The acceptance bars: >= 80% hit rate, >= 2x wall clock.
    assert hit_rate_pct >= 80, (
        f"hit rate {hit_rate_pct}% below the 80% bar"
    )
    assert speedup >= 2.0, (
        f"cache speedup {speedup:.2f}x below the 2x bar"
    )
