"""Ablation — two-stage aggregation and distributed top-N.

Both optimizations trade extra local work for fewer rows through the
Motion.  Toggling them isolates the effect on rows moved and runtime.
"""

from __future__ import annotations

import random

from repro.engine import Database
from repro import types as t
from repro.catalog import DistributionPolicy, TableSchema

from .._helpers import emit, format_table, timed

ROWS = 40_000
AGG_QUERY = "SELECT k, count(*) AS c, avg(v) AS m FROM t GROUP BY k"
TOPN_QUERY = "SELECT a, v FROM t ORDER BY v DESC LIMIT 10"


def _build() -> Database:
    db = Database(num_segments=4)
    db.create_table(
        "t",
        TableSchema.of(("a", t.INT), ("k", t.INT), ("v", t.FLOAT)),
        distribution=DistributionPolicy.hashed("a"),
    )
    rng = random.Random(6)
    db.insert(
        "t",
        (
            (i, rng.randrange(50), rng.uniform(0, 100))
            for i in range(ROWS)
        ),
    )
    db.analyze()
    return db


def _rows_through_motions(db, plan) -> int:
    """Total rows buffered by all Motions during one execution."""
    from repro.executor.context import ExecContext

    ctx = ExecContext(db.catalog, db.storage, db.num_segments)
    from repro.executor.executor import _motions_deepest_first

    for motion in _motions_deepest_first(plan.root):
        db.executor._run_motion(motion, ctx)
    total = 0
    for buffer in ctx.motion_buffers.values():
        total += sum(len(rows) for rows in buffer)
    return total


def test_ablation_two_stage(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    db = _build()
    rows = []
    baselines = {}
    for label, sql, options in (
        ("grouped agg, two-stage", AGG_QUERY, {}),
        ("grouped agg, single-stage", AGG_QUERY, {"enable_two_stage_agg": False}),
        ("top-10, distributed", TOPN_QUERY, {}),
        ("top-10, gather-all", TOPN_QUERY, {"enable_top_n": False}),
    ):
        plan = db.plan(sql, **options)
        result = db.execute_plan(plan)
        baselines[label] = sorted(result.rows, key=repr)
        rows.append(
            [
                label,
                f"{timed(lambda p=plan: db.execute_plan(p)) * 1000:.1f} ms",
                _rows_through_motions(db, plan),
            ]
        )
    # float summation order differs between the stagings; compare with
    # tolerance
    two_stage = baselines["grouped agg, two-stage"]
    single = baselines["grouped agg, single-stage"]
    assert len(two_stage) == len(single)
    for a, b in zip(two_stage, single):
        assert a[0] == b[0] and a[1] == b[1]
        assert abs(a[2] - b[2]) < 1e-9
    assert baselines["top-10, distributed"] == baselines["top-10, gather-all"]
    emit(
        "ablation_two_stage",
        format_table(["configuration", "runtime", "rows through motions"], rows),
    )
