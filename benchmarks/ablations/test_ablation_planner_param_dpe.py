"""Ablation — the legacy Planner's parameter-based dynamic elimination.

Shows what the rudimentary mechanism buys (run-time leaf skipping for the
simple equality pattern) and what it doesn't (plan size still linear).
"""

from __future__ import annotations

from repro.workloads.synthetic import JOIN_QUERY, build_rs_database

from .._helpers import emit, format_table


def test_ablation_planner_param_dpe(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    db = build_rs_database(num_parts=20, rows_per_table=400)
    # Concentrate the driving side so skipping is observable.
    db.storage.store_by_name("r").truncate()
    db.insert("r", [(i, i % 1000) for i in range(400)])
    db.analyze("r")

    rows = []
    for label, options in (
        ("param DPE on", {}),
        ("param DPE off", {"enable_param_dpe": False}),
    ):
        plan = db.plan(JOIN_QUERY, optimizer="planner", **options)
        result = db.execute_plan(plan)
        rows.append(
            [
                label,
                plan.size_bytes(),
                result.partitions_scanned("s"),
                result.rows_scanned,
            ]
        )
    emit(
        "ablation_planner_param_dpe",
        format_table(
            ["configuration", "plan bytes", "s parts scanned", "rows scanned"],
            rows,
        ),
    )
    on, off = rows
    assert on[2] < off[2], "guarding must skip leaves at run time"
    # but the plan itself is no smaller — every leaf is still listed
    assert on[1] >= off[1] * 0.9
