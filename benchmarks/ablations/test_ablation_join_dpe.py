"""Ablation — join-driven dynamic elimination on/off.

DESIGN.md calls out the Algorithm-4 routing (specs re-routed to the join's
outer side) as the design choice that unlocks dynamic elimination.  This
ablation isolates it: static elimination stays on in both configurations,
only the join routing toggles.
"""

from __future__ import annotations

from repro.workloads import tpcds

from .._helpers import emit, format_table


def test_ablation_join_dpe(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    db = tpcds.build_database(fact_rows=2000, num_segments=2)
    queries = [
        q for q in tpcds.workload_queries() if q.kind == "dynamic"
    ]
    rows = []
    for query in queries:
        table = tpcds.fact_table_of(query)
        with_dpe = db.sql(query.sql)
        without = db.sql(query.sql, enable_join_dpe=False)
        assert sorted(with_dpe.rows, key=repr) == sorted(
            without.rows, key=repr
        )
        rows.append(
            [
                query.name,
                with_dpe.partitions_scanned(table),
                without.partitions_scanned(table),
                with_dpe.rows_scanned,
                without.rows_scanned,
            ]
        )
    emit(
        "ablation_join_dpe",
        format_table(
            [
                "query",
                "parts (dpe on)",
                "parts (dpe off)",
                "rows scanned (on)",
                "rows scanned (off)",
            ],
            rows,
        ),
    )
    # every dynamic query loses its elimination when the routing is off
    assert all(row[1] < row[2] for row in rows)
