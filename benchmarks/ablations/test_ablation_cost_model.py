"""Ablation — cost-model sensitivity of the DPE plan choice.

The optimizer cannot know at plan time how many partitions a dynamic
PartitionSelector will keep; the ``dpe_fraction`` knob encodes the
assumption.  The paper attributes its Figure 17 outliers to exactly this
kind of imperfect tuning.  Sweeping the knob shows where the optimizer
flips between the DPE plan (selector over a broadcast build side) and the
conventional co-located join.
"""

from __future__ import annotations

from repro.engine import Database
from repro.optimizer.cost import CostModel
from repro.physical.ops import BroadcastMotion, PartitionSelector
from repro.workloads import tpcds

from .._helpers import emit, format_table

QUERY = (
    "SELECT count(*) FROM store_sales, date_dim "
    "WHERE ss_sold_date_sk = d_date_sk AND d_year = 2000"
)

FRACTIONS = (0.001, 0.05, 0.1, 0.3, 0.6, 0.9, 1.0)


def _uses_dpe(plan) -> bool:
    return any(
        isinstance(op, PartitionSelector) and op.spec.has_predicates
        for op in plan.walk()
    )


def test_ablation_cost_model(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    rows = []
    dpe_choices = []
    for fraction in FRACTIONS:
        db = Database(
            num_segments=2, cost_model=CostModel(dpe_fraction=fraction)
        )
        tpcds.create_schema(db)
        tpcds.load_data(db, fact_rows=1500)
        plan = db.plan(QUERY)
        uses_dpe = _uses_dpe(plan)
        dpe_choices.append(uses_dpe)
        broadcasts = sum(
            1 for op in plan.walk() if isinstance(op, BroadcastMotion)
        )
        result = db.execute_plan(plan)
        rows.append(
            [
                fraction,
                "DPE" if uses_dpe else "conventional",
                broadcasts,
                result.partitions_scanned("store_sales"),
                f"{result.elapsed_seconds * 1000:.1f} ms",
            ]
        )
    emit(
        "ablation_cost_model",
        format_table(
            [
                "assumed surviving fraction",
                "plan choice",
                "#broadcasts",
                "parts scanned",
                "runtime",
            ],
            rows,
        ),
    )
    # Optimistic assumptions must pick DPE; the point of the ablation is
    # that the choice is a cost decision, not hard-wired.
    assert dpe_choices[0] is True
