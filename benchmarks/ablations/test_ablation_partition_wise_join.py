"""Ablation — partition-wise joins (related-work extension).

When two tables are partitioned identically on the equi-join key and
hash-distributed on it, the Planner can join matching partition pairs
locally.  Compared with the conventional single hash join over the full
Appends, pairwise joining builds many small hash tables instead of one
big one and lets static pruning on either side drop whole pairs.
"""

from __future__ import annotations

from repro.workloads.synthetic import build_rs_database

from .._helpers import emit, format_table, timed

FULL_JOIN = "SELECT count(*) FROM r, s WHERE r.b = s.b"
PRUNED_JOIN = "SELECT count(*) FROM r, s WHERE r.b = s.b AND r.b < 2000"


def test_ablation_partition_wise_join(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    db = build_rs_database(num_parts=20, rows_per_table=3000)
    rows = []
    for label, sql in (("full join", FULL_JOIN), ("pruned join", PRUNED_JOIN)):
        results = {}
        for mode, options in (
            ("conventional", {}),
            ("partition-wise", {"enable_partition_wise_join": True}),
        ):
            plan = db.plan(sql, optimizer="planner", **options)
            result = db.execute_plan(plan)
            results[mode] = result
            rows.append(
                [
                    label,
                    mode,
                    f"{timed(lambda p=plan: db.execute_plan(p)) * 1000:.1f} ms",
                    plan.size_bytes(),
                    result.partitions_scanned("r")
                    + result.partitions_scanned("s"),
                ]
            )
        assert (
            results["conventional"].rows == results["partition-wise"].rows
        )
    emit(
        "ablation_partition_wise_join",
        format_table(
            ["query", "mode", "runtime", "plan bytes", "total parts scanned"],
            rows,
        ),
    )
