"""Ablation — native PartitionSelector vs the Section 3.2 lowered form.

The lowering replaces the dedicated operator with Filter/Project plumbing
over the Table 1 built-ins (Figure 15).  Results must be identical; the
ablation quantifies the (small) runtime delta of the function-based form.
"""

from __future__ import annotations

from repro.executor.lowering import lower_partition_selectors
from repro.workloads.tpch import build_lineitem_database, shipdate_for_fraction

from .._helpers import emit, format_table, timed


def test_ablation_lowering(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    db = build_lineitem_database(84, row_count=3000, num_segments=2)
    cutoff = shipdate_for_fraction(0.25)
    sql = (
        "SELECT count(*) FROM lineitem "
        f"WHERE l_shipdate < '{cutoff.isoformat()}'"
    )
    native_plan = db.plan(sql)
    lowered_plan = lower_partition_selectors(native_plan)

    native_result = db.execute_plan(native_plan)
    lowered_result = db.execute_plan(lowered_plan)
    assert native_result.rows == lowered_result.rows
    assert native_result.partitions_scanned(
        "lineitem"
    ) == lowered_result.partitions_scanned("lineitem")

    native_time = timed(lambda: db.execute_plan(native_plan))
    lowered_time = timed(lambda: db.execute_plan(lowered_plan))
    emit(
        "ablation_lowering",
        format_table(
            ["form", "runtime", "plan bytes", "parts scanned"],
            [
                [
                    "native PartitionSelector",
                    f"{native_time * 1000:.2f} ms",
                    native_plan.size_bytes(),
                    native_result.partitions_scanned("lineitem"),
                ],
                [
                    "lowered (Figure 15 built-ins)",
                    f"{lowered_time * 1000:.2f} ms",
                    lowered_plan.size_bytes(),
                    lowered_result.partitions_scanned("lineitem"),
                ],
            ],
        ),
    )
    # both forms must stay within a small factor of each other
    assert lowered_time < native_time * 3 + 0.05
