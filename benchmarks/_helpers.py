"""Shared infrastructure for the experiment benchmarks.

Each benchmark reproduces one table or figure from the paper's Section 4
and emits the regenerated rows/series both to stdout and to a text file
under ``benchmarks/results/`` so runs can be diffed against
``EXPERIMENTS.md``.
"""

from __future__ import annotations

import json
import pathlib
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def measured_counters(result) -> dict:
    """The execution's measured counters, read through the stable JSON
    export (so the benchmarks exercise the same interface external tooling
    consumes) — see docs/architecture.md, "Observability"."""
    return json.loads(result.metrics.to_json())


def table_counters(result, table: str) -> dict:
    """Measured per-table scan counters: ``partitions_scanned``,
    ``partitions_total``, ``rows_scanned``."""
    tables = measured_counters(result)["tables"]
    return tables.get(
        table,
        {"partitions_scanned": 0, "partitions_total": None, "rows_scanned": 0},
    )


def motion_counters(result) -> dict:
    """Measured aggregate Motion traffic: ``motion_rows``/``motion_bytes``."""
    totals = measured_counters(result)["totals"]
    return {
        "rows_moved": totals["motion_rows"],
        "bytes_moved": totals["motion_bytes"],
    }


def emit(name: str, lines: list[str]) -> None:
    """Print an experiment's regenerated table and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines)
    banner = f"=== {name} ==="
    print(f"\n{banner}\n{text}\n")
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def emit_json(name: str, payload) -> None:
    """Persist an experiment's machine-readable results alongside the text
    table (``benchmarks/results/<name>.json``; CI uploads these as a
    workflow artifact)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    )


def format_table(headers: list[str], rows: list[list]) -> list[str]:
    """Plain-text aligned table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rendered)
    return lines


def timed(func, repeats: int = 3) -> float:
    """Best-of-N wall-clock seconds for a callable."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best
