"""Figure 21 (this repo's extension) — concurrent serving throughput.

The paper's experiments are single-query; a serving tier's value shows
only under concurrency.  This benchmark drives the admission-controlled
:class:`~repro.serving.QueryServer` two ways:

* **Throughput scaling** — the same query mix from 1, 4 and 16 client
  sessions over one shared worker pool, with simulated storage I/O
  latency (the GIL-releasing sleep that parallelises honestly).
  Reported: queries/sec and per-session p50/p99 latency per client
  count.  Wall clocks are report-only in the regression gate.
* **Overload degradation** — a deliberately tiny tier (1 slot, queue of
  2) under a synchronized burst.  The interesting numbers here are
  *deterministic* and gate hard in ``tools/check_bench_regression.py``
  (the ``overload`` key): every excess query is shed with the typed
  :class:`~repro.errors.ServerOverloaded` (``queue_full``), nothing
  fails untyped, and every admitted query still returns the exact
  serial answer.

Assertions: 16 clients beat 1 client's throughput; overload sheds
cleanly (typed, zero wrong results).
"""

from __future__ import annotations

import datetime
import random
import threading
import time

SEGMENTS = 4
PARTS = 24
ROWS = 3000
QUERIES_PER_CLIENT = 6
CLIENT_COUNTS = (1, 4, 16)
IO_LATENCY_S = 0.001

QUERY = (
    "SELECT avg(amount) FROM orders "
    "WHERE date BETWEEN '03-01-2012' AND '10-31-2013'"
)


def _build_db():
    from repro import Database
    from repro import types as t
    from repro.catalog import (
        DistributionPolicy,
        PartitionScheme,
        TableSchema,
        monthly_range_level,
    )

    db = Database(num_segments=SEGMENTS)
    db.create_table(
        "orders",
        TableSchema.of(
            ("order_id", t.INT), ("amount", t.FLOAT), ("date", t.DATE)
        ),
        distribution=DistributionPolicy.hashed("order_id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", datetime.date(2012, 1, 1), PARTS)]
        ),
    )
    rng = random.Random(2121)
    start = datetime.date(2012, 1, 1)
    db.insert(
        "orders",
        [
            (
                i,
                round(rng.uniform(1, 100), 2),
                start + datetime.timedelta(days=rng.randrange(729)),
            )
            for i in range(ROWS)
        ],
    )
    db.analyze()
    return db


def _throughput_pass(db, clients: int, reference) -> dict:
    """One client-count point: ``clients`` sessions, each submitting
    ``QUERIES_PER_CLIENT`` queries concurrently through one server."""
    server = db.serve(
        max_concurrent=8,
        max_queued=64,
        queue_timeout_s=30.0,
        session_max_inflight=2,
        pool_workers=16,
    )
    sessions = [
        server.session(name=f"client-{i:02d}", workers=2)
        for i in range(clients)
    ]
    wrong = 0
    lock = threading.Lock()

    def drive(session):
        nonlocal wrong
        for _ in range(QUERIES_PER_CLIENT):
            rows = session.sql(QUERY).rows
            if rows != reference:
                with lock:
                    wrong += 1

    threads = [
        threading.Thread(target=drive, args=(session,))
        for session in sessions
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    total = clients * QUERIES_PER_CLIENT
    latencies = server.stats.to_dict()
    p50 = max(entry["p50_s"] for entry in latencies.values())
    p99 = max(entry["p99_s"] for entry in latencies.values())
    admission = server.admission.stats()
    server.close()
    assert wrong == 0, f"{wrong} wrong results at {clients} clients"
    assert admission["admitted"] == total
    return {
        "clients": clients,
        "queries": total,
        "elapsed_seconds": elapsed,
        "qps": total / elapsed if elapsed else 0.0,
        "p50_s": p50,
        "p99_s": p99,
        "degraded_grants": admission["degraded_grants"],
    }


def _overload_pass(db, reference) -> dict:
    """The deterministic overload scenario (gated counters).

    One slot, queue of two, generous queue timeout.  A holder query
    occupies the slot (slow storage keeps it there), two queries fill
    the queue, and three more burst in while it is full — each must shed
    *immediately* with the typed queue_full rejection.  The holder and
    both queued queries then drain and must answer exactly."""
    from repro.errors import ServerOverloaded

    server = db.serve(
        max_concurrent=1,
        max_queued=2,
        queue_timeout_s=30.0,
        session_max_inflight=1,
    )
    sessions = [server.session(name=f"burst-{i}") for i in range(6)]
    outcomes: dict[str, object] = {}
    lock = threading.Lock()

    def run(tag, session):
        try:
            rows = session.sql(QUERY).rows
            with lock:
                outcomes[tag] = rows
        except ServerOverloaded as exc:
            with lock:
                outcomes[tag] = ("shed", exc.reason)
        except Exception as exc:  # noqa: BLE001 - counted as untyped
            with lock:
                outcomes[tag] = ("untyped", repr(exc))

    db.storage.io_latency_s = 0.02  # the holder stays in flight a while
    threads = [threading.Thread(target=run, args=("held", sessions[0]))]
    threads[0].start()
    deadline = time.monotonic() + 30.0
    while server.admission.inflight == 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    for i in (1, 2):
        thread = threading.Thread(target=run, args=(f"queued-{i}", sessions[i]))
        thread.start()
        threads.append(thread)
    while server.admission.queue_depth < 2 and time.monotonic() < deadline:
        time.sleep(0.001)
    assert server.admission.queue_depth == 2, "queue never filled"
    # the queue is full and the slot is held: these shed synchronously
    for i in (3, 4, 5):
        run(f"shed-{i}", sessions[i])
    db.storage.io_latency_s = IO_LATENCY_S
    for thread in threads:
        thread.join(timeout=60.0)
        assert not thread.is_alive()
    admission = server.admission.stats()
    server.close()

    succeeded = [
        tag for tag, value in outcomes.items() if isinstance(value, list)
    ]
    shed = [
        tag
        for tag, value in outcomes.items()
        if isinstance(value, tuple) and value[0] == "shed"
    ]
    untyped = [
        tag
        for tag, value in outcomes.items()
        if isinstance(value, tuple) and value[0] == "untyped"
    ]
    wrong = [tag for tag in succeeded if outcomes[tag] != reference]
    return {
        "clients": 6,
        "admitted": admission["admitted"],
        "completed": len(succeeded),
        "rejected_queue_full": admission["rejected"]["queue_full"],
        "rejected_queue_timeout": admission["rejected"]["queue_timeout"],
        "shed_typed": len(shed),
        "untyped_errors": len(untyped),
        "wrong_results": len(wrong),
    }


def test_fig21_concurrent_throughput(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    from ._helpers import emit, emit_json, format_table

    db = _build_db()
    reference = db.sql(QUERY).rows
    db.storage.io_latency_s = IO_LATENCY_S

    points = [
        _throughput_pass(db, clients, reference)
        for clients in CLIENT_COUNTS
    ]
    # end-to-end latency across every serving statement so far, from the
    # live telemetry histogram (queue wait included; report-only in the
    # regression gate)
    percentiles = db.live.query_seconds.percentiles()
    db.storage.io_latency_s = 0.02
    overload = _overload_pass(db, reference)

    emit(
        "fig21_concurrent_throughput",
        format_table(
            ["clients", "queries", "qps", "p50", "p99", "degraded"],
            [
                [
                    point["clients"],
                    point["queries"],
                    f"{point['qps']:.1f}",
                    f"{point['p50_s'] * 1000:.1f} ms",
                    f"{point['p99_s'] * 1000:.1f} ms",
                    point["degraded_grants"],
                ]
                for point in points
            ],
        )
        + [
            "",
            "overload (1 slot, queue of 2, 6 clients): "
            f"{overload['admitted']} admitted, "
            f"{overload['rejected_queue_full']} shed typed (queue_full), "
            f"{overload['untyped_errors']} untyped errors, "
            f"{overload['wrong_results']} wrong results",
            f"statement latency: p50 {percentiles['p50_s'] * 1000:.1f} ms  "
            f"p95 {percentiles['p95_s'] * 1000:.1f} ms  "
            f"p99 {percentiles['p99_s'] * 1000:.1f} ms",
        ],
    )
    emit_json(
        "fig21_concurrent_throughput",
        {
            "io_latency_s": IO_LATENCY_S,
            "queries_per_client": QUERIES_PER_CLIENT,
            "throughput": points,
            "overload": overload,
            "latency_percentiles": percentiles,
        },
    )

    # Acceptance bars: concurrency helps, and overload sheds cleanly.
    single = next(p for p in points if p["clients"] == 1)
    wide = next(p for p in points if p["clients"] == 16)
    assert wide["qps"] > single["qps"], (
        f"16 clients ({wide['qps']:.1f} qps) did not beat one client "
        f"({single['qps']:.1f} qps)"
    )
    assert overload["admitted"] == 3
    assert overload["rejected_queue_full"] == 3
    assert overload["untyped_errors"] == 0
    assert overload["wrong_results"] == 0
