"""Session-shared state for the experiment benchmarks.

The TPC-DS-like workload run (33 queries × several configurations) feeds
three experiments — Table 3, Figure 16 and Figure 17 — so it is executed
once per session and shared.
"""

from __future__ import annotations

import pytest

from repro.obs import Tracer, activate
from repro.workloads import tpcds

FACT_ROWS = 2500
SEGMENTS = 2


class WorkloadRun:
    """Per-query measurements across optimizer configurations."""

    def __init__(self):
        self.db = tpcds.build_database(
            fact_rows=FACT_ROWS, num_segments=SEGMENTS
        )
        self.queries = tpcds.workload_queries()
        #: query name -> {config: (partitions per table dict, elapsed, rows)}
        self.measurements: dict[str, dict] = {}

    def run_all(self) -> None:
        for query in self.queries:
            table = tpcds.fact_table_of(query)
            entry = {}
            for config, options in (
                ("orca", {}),
                ("planner", {"optimizer": "planner"}),
                (
                    "orca_no_selection",
                    {"enable_partition_elimination": False},
                ),
            ):
                # Plan once (under a tracer, so the optimize-phase wall
                # time lands in the measurements); take the best of three
                # executions so the millisecond-scale wall clocks are not
                # pure noise.
                tracer = Tracer()
                with activate(tracer):
                    plan = self.db.plan(query.sql, **options)
                result = self.db.execute_plan(plan)
                elapsed = result.elapsed_seconds
                for _ in range(2):
                    repeat = self.db.execute_plan(plan)
                    elapsed = min(elapsed, repeat.elapsed_seconds)
                # Read the measured counters from the metrics object (the
                # executor's per-node instrumentation) instead of
                # re-deriving them from the shared tracker.
                stats = result.metrics.table_stats().get(table, {})
                entry[config] = {
                    "partitions": stats.get("partitions_scanned", 0),
                    "rows_scanned": result.metrics.total_rows_scanned,
                    "elapsed": elapsed,
                    "optimize_seconds": tracer.seconds("optimize"),
                    "table": table,
                }
            self.measurements[query.name] = entry


@pytest.fixture(scope="session")
def workload_run() -> WorkloadRun:
    run = WorkloadRun()
    run.run_all()
    return run
