"""Paper Figure 18(c) — Plan size, DML over partitioned tables.

``UPDATE R SET b = S.b FROM S WHERE R.a = S.a`` with both tables
partitioned.  The Planner enumerates every join combination between the
individual partitions — **quadratic** plan growth — while Orca's plan
stays flat (one DynamicScan-based join feeding the Update).
"""

from __future__ import annotations

from repro.workloads.synthetic import UPDATE_QUERY, build_rs_database

from ._helpers import emit, emit_json, format_table

PART_COUNTS = (10, 20, 30, 40, 50)


def test_fig18c_plan_sizes(benchmark):
    benchmark.pedantic(_report, rounds=1, iterations=1)


def _report():
    rows = []
    planner_sizes, orca_sizes = [], []
    for parts in PART_COUNTS:
        db = build_rs_database(num_parts=parts, rows_per_table=100)
        planner_plan = db.plan(UPDATE_QUERY, optimizer="planner")
        orca_plan = db.plan(UPDATE_QUERY)
        joins = sum(
            1
            for op in planner_plan.walk()
            if type(op).__name__ in ("HashJoin", "NLJoin")
        )
        planner_sizes.append(planner_plan.size_bytes())
        orca_sizes.append(orca_plan.size_bytes())
        rows.append(
            [
                parts,
                joins,
                planner_plan.size_bytes(),
                orca_plan.size_bytes(),
            ]
        )
    emit(
        "fig18c_dml_plan_size",
        format_table(
            [
                "#partitions per table",
                "planner pairwise joins",
                "planner bytes",
                "orca bytes",
            ],
            rows,
        ),
    )
    emit_json(
        "fig18c_dml_plan_size",
        {
            "part_counts": list(PART_COUNTS),
            "planner_bytes": planner_sizes,
            "orca_bytes": orca_sizes,
        },
    )

    # Quadratic: 5x partitions -> ~25x plan size for the Planner.
    growth = planner_sizes[-1] / planner_sizes[0]
    assert growth > 15, f"expected quadratic growth, got {growth:.1f}x"
    # Superlinear check: growth clearly exceeds the 5x linear factor.
    assert growth > 2 * (PART_COUNTS[-1] / PART_COUNTS[0])
    # Orca stays flat.
    assert max(orca_sizes) == min(orca_sizes)
