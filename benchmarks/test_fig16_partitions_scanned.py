"""Paper Figure 16 — Partition elimination effectiveness.

Number of partitions scanned per partitioned table, aggregated across the
whole workload, Planner vs Orca.  The paper's claim: Orca scans at most as
many partitions as Planner for every table, and up to ~80% fewer for some
(web_returns in the paper).

The per-query partition counts come straight from the executor's metrics
layer (``result.metrics.table_stats()``, collected per DynamicScan /
LeafScan node) rather than being re-derived from result rows.
"""

from __future__ import annotations


def test_fig16_partitions_scanned(benchmark, workload_run):
    benchmark.pedantic(_report, args=(workload_run,), rounds=1, iterations=1)


def _report(workload_run):
    from repro.workloads.tpcds import FACT_TABLES

    from ._helpers import emit, emit_json, format_table

    totals = {
        table: {"orca": 0, "planner": 0} for table in FACT_TABLES
    }
    for query in workload_run.queries:
        entry = workload_run.measurements[query.name]
        table = entry["orca"]["table"]
        totals[table]["orca"] += entry["orca"]["partitions"]
        totals[table]["planner"] += entry["planner"]["partitions"]

    rows = []
    reductions = []
    for table in FACT_TABLES:
        orca = totals[table]["orca"]
        planner = totals[table]["planner"]
        reduction = (1 - orca / planner) * 100 if planner else 0.0
        reductions.append(reduction)
        rows.append([table, planner, orca, f"{reduction:.0f}%"])
    emit(
        "fig16_partitions_scanned",
        format_table(
            ["table", "planner parts", "orca parts", "orca reduction"], rows
        ),
    )
    emit_json("fig16_partitions_scanned", {"tables": totals})

    # Orca never scans more than Planner on any table, and achieves a
    # substantial reduction (paper: up to 80%) on at least one.
    for table in FACT_TABLES:
        assert totals[table]["orca"] <= totals[table]["planner"], table
    assert max(reductions) >= 40.0
