"""Paper Table 3 — Workload classification.

Every workload query runs under Orca and under the legacy Planner; queries
are bucketed by who eliminated more partitions of the query's fact table.
The paper reports (for real TPC-DS): 11% Orca-only elimination, 3% Orca
more, 80% equal, 3% Orca fewer, 3% Planner-only.  The *shape* to reproduce:
a large "equal" bucket (static elimination is symmetric) plus a meaningful
slice where only Orca eliminates (the dynamic-elimination queries), and no
bucket where the Planner wins on our workload.
"""

from __future__ import annotations

CATEGORIES = [
    "Orca eliminates parts, Planner does not",
    "Orca eliminates more parts than Planner",
    "Orca and Planner eliminate parts equally",
    "Orca eliminates fewer parts than Planner",
    "Orca does not eliminate parts, Planner does",
]


def classify(total: int, orca: int, planner: int) -> str:
    orca_eliminates = orca < total
    planner_eliminates = planner < total
    if orca_eliminates and not planner_eliminates:
        return CATEGORIES[0]
    if orca < planner:
        return CATEGORIES[1]
    if orca == planner:
        return CATEGORIES[2]
    if planner_eliminates and not orca_eliminates:
        return CATEGORIES[4]
    return CATEGORIES[3]


def test_table3_classification(benchmark, workload_run):
    benchmark.pedantic(
        _report, args=(workload_run,), rounds=1, iterations=1
    )


def _report(workload_run):
    from repro.workloads.tpcds import FACT_PARTITIONS

    from ._helpers import emit, format_table

    counts = {category: 0 for category in CATEGORIES}
    per_query = []
    for query in workload_run.queries:
        entry = workload_run.measurements[query.name]
        orca = entry["orca"]["partitions"]
        planner = entry["planner"]["partitions"]
        category = classify(FACT_PARTITIONS, orca, planner)
        counts[category] += 1
        per_query.append([query.name, query.kind, orca, planner, category])

    total = len(workload_run.queries)
    rows = [
        [category, f"{counts[category] / total * 100:.0f}%", counts[category]]
        for category in CATEGORIES
    ]
    lines = format_table(["Category", "Percentage", "#queries"], rows)
    lines.append("")
    lines.extend(
        format_table(
            ["query", "kind", "orca parts", "planner parts", "category"],
            per_query,
        )
    )
    emit("table3_workload_classification", lines)

    # Shape assertions mirroring the paper's findings.
    equal_share = counts[CATEGORIES[2]] / total
    orca_only_share = (
        counts[CATEGORIES[0]] + counts[CATEGORIES[1]]
    ) / total
    assert equal_share >= 0.5, "static elimination should dominate"
    assert orca_only_share >= 0.1, "dynamic elimination should appear"
    assert counts[CATEGORIES[4]] == 0, "Planner must never beat Orca here"
