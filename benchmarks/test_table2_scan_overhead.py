"""Paper Table 2 — Overhead of Partitioning.

``SELECT * FROM lineitem`` over 7 years of data, partitioned per the
paper's four scenarios (42 / 84 / 169 / 361 parts), compared with an
unpartitioned baseline.  The paper reports 1-3% overhead, stable across
partition counts; the claim reproduced here is that overhead stays small
and does **not** grow with the number of partitions (per-row scan work
dominates per-partition open overhead).
"""

from __future__ import annotations

import pytest

from repro.workloads.tpch import TABLE2_SCENARIOS, build_lineitem_database

from ._helpers import emit, format_table, table_counters, timed

ROW_COUNT = 4000
SEGMENTS = 2
QUERY = "SELECT * FROM lineitem"

_scenarios = [None] + sorted(TABLE2_SCENARIOS)


def _run_full_scan(db, plan):
    result = db.execute_plan(plan)
    assert len(result.rows) == ROW_COUNT
    # The measured counters must agree with the workload's ground truth:
    # a full scan reads every row exactly once and opens every partition.
    counters = table_counters(result, "lineitem")
    assert counters["rows_scanned"] == ROW_COUNT
    total = counters["partitions_total"]
    if total is not None:  # partitioned scenarios only
        assert counters["partitions_scanned"] == total
    return result


@pytest.fixture(scope="module")
def databases():
    built = {}
    for parts in _scenarios:
        built[parts] = build_lineitem_database(
            parts, row_count=ROW_COUNT, num_segments=SEGMENTS
        )
    return built


@pytest.mark.parametrize("parts", _scenarios, ids=lambda p: f"parts={p or 0}")
def test_full_scan(benchmark, databases, parts):
    db = databases[parts]
    plan = db.plan(QUERY)
    benchmark.pedantic(
        _run_full_scan, args=(db, plan), rounds=3, iterations=1
    )


def test_report_table2(benchmark, databases):
    """Regenerate the Table 2 rows: per-scenario overhead vs baseline."""
    benchmark.pedantic(_report_table2, args=(databases,), rounds=1, iterations=1)


def _report_table2(databases):
    timings = {}
    opened = {}
    for parts, db in databases.items():
        plan = db.plan(QUERY)
        timings[parts] = timed(lambda d=db, p=plan: _run_full_scan(d, p))
        result = db.execute_plan(plan)
        opened[parts] = table_counters(result, "lineitem")[
            "partitions_scanned"
        ]
    baseline = timings[None]
    rows = []
    for parts in sorted(TABLE2_SCENARIOS):
        overhead = (timings[parts] - baseline) / baseline * 100
        rows.append(
            [
                parts,
                TABLE2_SCENARIOS[parts],
                opened[parts],
                f"{timings[parts] * 1000:.1f} ms",
                f"{overhead:+.0f}%",
            ]
        )
    rows.append(
        [0, "unpartitioned baseline", 0, f"{baseline * 1000:.1f} ms", "-"]
    )
    emit(
        "table2_scan_overhead",
        format_table(
            ["#parts", "Description", "parts opened", "best time", "Overhead"],
            rows,
        ),
    )
    # Paper claim: overhead small and stable; allow generous simulator slack.
    worst = max(
        (timings[p] - baseline) / baseline for p in TABLE2_SCENARIOS
    )
    assert worst < 0.60, "partitioned full scan overhead exploded"
