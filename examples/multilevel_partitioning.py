"""Multi-level (hierarchical) partitioning — paper Section 2.4, Figures
9 and 10.

``orders`` is partitioned by month at the first level and by region at the
second: 24 x 2 = 48 leaf partitions.  Queries may constrain either level,
both, or neither; the extended PartSelectorSpec carries one optional
predicate per level.

Run with:  python examples/multilevel_partitioning.py
"""

import random

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    list_level,
    uniform_int_level,
)

MONTH_DAYS = 30
MONTHS = 24
REGIONS = ("Region 1", "Region 2")


def main() -> None:
    db = Database(num_segments=2)
    db.create_table(
        "orders",
        TableSchema.of(
            ("order_id", t.INT),
            ("amount", t.FLOAT),
            ("date_id", t.INT),
            ("region", t.TEXT),
        ),
        distribution=DistributionPolicy.hashed("order_id"),
        partition_scheme=PartitionScheme(
            [
                uniform_int_level("date_id", 0, MONTHS * MONTH_DAYS, MONTHS),
                list_level(
                    "region",
                    [(f"r{i + 1}", [name]) for i, name in enumerate(REGIONS)],
                ),
            ]
        ),
    )
    rng = random.Random(9)
    db.insert(
        "orders",
        (
            (
                i,
                round(rng.uniform(1.0, 99.0), 2),
                rng.randrange(MONTHS * MONTH_DAYS),
                rng.choice(REGIONS),
            )
            for i in range(12_000)
        ),
    )
    db.analyze()

    scenarios = [
        (
            "date only (one month)",
            "SELECT count(*) FROM orders WHERE date_id BETWEEN 0 AND 29",
        ),
        (
            "region only",
            "SELECT count(*) FROM orders WHERE region = 'Region 1'",
        ),
        (
            "date AND region (Figure 10's single-leaf case)",
            "SELECT count(*) FROM orders "
            "WHERE date_id BETWEEN 0 AND 29 AND region = 'Region 1'",
        ),
        ("no predicate (all leaves)", "SELECT count(*) FROM orders"),
    ]
    total_leaves = db.catalog.table("orders").num_leaves
    print(f"orders: {MONTHS} months x {len(REGIONS)} regions = "
          f"{total_leaves} leaf partitions\n")
    for label, sql in scenarios:
        result = db.sql(sql)
        print(f"{label}:")
        print(f"  rows = {result.rows[0][0]}, partitions scanned = "
              f"{result.partitions_scanned('orders')} / {total_leaves}")
    print("\nPlan for the combined-predicate query:")
    print(db.explain(scenarios[2][1]))


if __name__ == "__main__":
    main()
