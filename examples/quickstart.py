"""Quickstart: the paper's Figure 1/2 scenario.

Creates an ``orders`` table with 24 monthly partitions (two years of
data), loads synthetic rows, and runs the Figure 2 query that summarizes
the last quarter — static partition elimination scans only 3 of the 24
partitions.

Run with:  python examples/quickstart.py
"""

import datetime
import random

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    monthly_range_level,
)


def main() -> None:
    db = Database(num_segments=4)

    # -- DDL: orders partitioned by month (Figure 1) -----------------------
    db.create_table(
        "orders",
        TableSchema.of(
            ("order_id", t.INT),
            ("amount", t.FLOAT),
            ("date", t.DATE),
        ),
        distribution=DistributionPolicy.hashed("order_id"),
        partition_scheme=PartitionScheme(
            [monthly_range_level("date", datetime.date(2012, 1, 1), 24)]
        ),
    )

    # -- load two years of synthetic orders --------------------------------
    rng = random.Random(2014)
    start = datetime.date(2012, 1, 1)
    db.insert(
        "orders",
        (
            (
                i,
                round(rng.uniform(5.0, 500.0), 2),
                start + datetime.timedelta(days=rng.randrange(730)),
            )
            for i in range(10_000)
        ),
    )
    db.analyze()

    # -- the Figure 2 query: average order amount of the last quarter ------
    query = (
        "SELECT avg(amount) FROM orders "
        "WHERE date BETWEEN '10-01-2013' AND '12-31-2013'"
    )
    print("Query:\n ", query, "\n")
    print("Plan:")
    print(db.explain(query))
    print()

    result = db.sql(query)
    print(f"avg(amount) = {result.rows[0][0]:.2f}")
    print(
        f"partitions scanned: {result.partitions_scanned('orders')} of 24 "
        f"({result.rows_scanned} rows touched)"
    )

    # Without partition selection, all 24 partitions are read.
    baseline = db.sql(query, enable_partition_elimination=False)
    print(
        f"with selection disabled: "
        f"{baseline.partitions_scanned('orders')} partitions, "
        f"{baseline.rows_scanned} rows touched"
    )


if __name__ == "__main__":
    main()
