"""Prepared statements and deferred partition selection (paper Section 1).

A parameterised query is planned once; parameter values arrive only at
execution time.  Because selection is performed by the PartitionSelector
*at run time*, each execution scans only the partitions its parameters
select — without replanning.  The legacy Planner, whose elimination is
plan-time-only, lists and scans every partition.

Run with:  python examples/prepared_statements.py
"""

import random

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)


def main() -> None:
    db = Database(num_segments=4)
    db.create_table(
        "events",
        TableSchema.of(
            ("event_id", t.INT), ("bucket", t.INT), ("payload", t.INT)
        ),
        distribution=DistributionPolicy.hashed("event_id"),
        partition_scheme=PartitionScheme(
            [uniform_int_level("bucket", 0, 1000, 20)]
        ),
    )
    rng = random.Random(3)
    db.insert(
        "events",
        ((i, rng.randrange(1000), rng.randrange(10**6)) for i in range(8000)),
    )
    db.analyze()

    sql = "SELECT count(*) FROM events WHERE bucket BETWEEN $1 AND $2"
    plan = db.plan(sql, parameter_count=2)
    print("Prepared plan (note the $1/$2 in the PartitionSelector):")
    print(plan.explain())
    print()

    for params in ([0, 49], [100, 299], [0, 999]):
        result = db.execute_plan(plan, params=params)
        print(
            f"params={params}: count={result.rows[0][0]}, partitions "
            f"scanned={result.partitions_scanned('events')} / 20"
        )

    planner_plan = db.plan(sql, optimizer="planner", parameter_count=2)
    planner_result = db.execute_plan(planner_plan, params=[0, 49])
    print(
        f"\nlegacy planner with params=[0, 49]: partitions scanned="
        f"{planner_result.partitions_scanned('events')} / 20 "
        f"(plan lists all leaves: {planner_plan.size_bytes()} bytes vs "
        f"orca {plan.size_bytes()} bytes)"
    )


if __name__ == "__main__":
    main()
