"""Dynamic partition elimination on a star schema (paper Figures 3, 4, 8).

The fact table is partitioned on a foreign key into a date dimension, so a
constant date filter cannot prune it directly: the qualifying partitions
are only known once the dimension has been filtered at run time.  The
Orca-style optimizer places a PartitionSelector on the *opposite* side of
the join (Plan 4 of Figure 14); the legacy Planner scans everything.

Run with:  python examples/star_schema_dpe.py
"""

import datetime
import random

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)

DAYS = 730  # two years of date surrogate keys


def build() -> Database:
    db = Database(num_segments=4)
    db.create_table(
        "date_dim",
        TableSchema.of(
            ("date_id", t.INT),
            ("year", t.INT),
            ("month", t.INT),
            ("day_of_week", t.INT),
        ),
        distribution=DistributionPolicy.hashed("date_id"),
    )
    db.create_table(
        "sales_fact",
        TableSchema.of(
            ("sale_id", t.INT),
            ("cust_id", t.INT),
            ("date_id", t.INT),
            ("amount", t.FLOAT),
        ),
        distribution=DistributionPolicy.hashed("sale_id"),
        partition_scheme=PartitionScheme(
            # monthly partitions over the surrogate-key domain
            [uniform_int_level("date_id", 0, DAYS, 24)]
        ),
    )
    db.create_table(
        "customer_dim",
        TableSchema.of(("cust_id", t.INT), ("state", t.TEXT)),
        distribution=DistributionPolicy.hashed("cust_id"),
    )

    rng = random.Random(7)
    base = datetime.date(2012, 1, 1)
    db.insert(
        "date_dim",
        (
            (
                offset,
                (base + datetime.timedelta(days=offset)).year,
                (base + datetime.timedelta(days=offset)).month,
                (base + datetime.timedelta(days=offset)).isoweekday(),
            )
            for offset in range(DAYS)
        ),
    )
    db.insert(
        "customer_dim",
        ((i, rng.choice(["CA", "NY", "TX", "WA"])) for i in range(500)),
    )
    db.insert(
        "sales_fact",
        (
            (
                i,
                rng.randrange(500),
                rng.randrange(DAYS),
                round(rng.uniform(1.0, 300.0), 2),
            )
            for i in range(20_000)
        ),
    )
    db.analyze()
    return db


def main() -> None:
    db = build()

    # -- Figure 4: IN-subquery form -----------------------------------------
    subquery_form = (
        "SELECT avg(amount) FROM sales_fact WHERE date_id IN "
        "(SELECT date_id FROM date_dim "
        " WHERE year = 2013 AND month BETWEEN 10 AND 12)"
    )
    print("Figure 4 query (IN-subquery -> semi-join):")
    print(db.explain(subquery_form))
    result = db.sql(subquery_form)
    print(
        f"\n  avg = {result.rows[0][0]:.2f}; partitions scanned: "
        f"{result.partitions_scanned('sales_fact')} of 24\n"
    )

    # -- Figure 6/8: the three-way star join --------------------------------
    star_join = (
        "SELECT c.state, sum(s.amount) AS revenue "
        "FROM sales_fact s, date_dim d, customer_dim c "
        "WHERE d.month BETWEEN 10 AND 12 AND d.year = 2013 "
        "AND d.date_id = s.date_id AND c.cust_id = s.cust_id "
        "GROUP BY c.state ORDER BY c.state"
    )
    print("Figure 6-style star join, Orca plan:")
    print(db.explain(star_join))
    orca = db.sql(star_join)
    planner = db.sql(star_join, optimizer="planner")
    print("\n  state revenue (orca):", orca.rows)
    print(
        f"  orca scanned {orca.partitions_scanned('sales_fact')} "
        f"fact partitions; planner scanned "
        f"{planner.partitions_scanned('sales_fact')}"
    )
    assert sorted(orca.rows) == sorted(planner.rows) or all(
        abs(a[1] - b[1]) < 1e-6 for a, b in zip(sorted(orca.rows), sorted(planner.rows))
    )


if __name__ == "__main__":
    main()
