"""Plan exploration tour: Memo internals, plan validation, plan size, and
the Section 3.2 lowering — the machinery behind the paper's Figures 12-15.

Run with:  python examples/plan_explorer.py
"""

import random

from repro import Database
from repro import types as t
from repro.catalog import (
    DistributionPolicy,
    PartitionScheme,
    TableSchema,
    uniform_int_level,
)
from repro.errors import InvalidPlanError
from repro.executor.lowering import lower_partition_selectors
from repro.physical.ops import BroadcastMotion, DynamicScan, PartitionSelector
from repro.physical.plan import Plan


def build() -> Database:
    db = Database(num_segments=4)
    db.create_table(
        "r",
        TableSchema.of(("pk", t.INT), ("v", t.INT)),
        distribution=DistributionPolicy.hashed("pk"),
        partition_scheme=PartitionScheme([uniform_int_level("pk", 0, 1000, 10)]),
    )
    db.create_table(
        "s",
        TableSchema.of(("a", t.INT), ("b", t.INT)),
        distribution=DistributionPolicy.hashed("a"),
    )
    rng = random.Random(1)
    db.insert("r", ((rng.randrange(1000), rng.randrange(50)) for _ in range(4000)))
    db.insert("s", ((rng.randrange(1000), rng.randrange(50)) for _ in range(200)))
    db.analyze()
    return db


def main() -> None:
    db = build()
    sql = "SELECT count(*) FROM r, s WHERE r.pk = s.a AND s.b < 5"

    # -- 1. the Memo after optimization (Figure 13) ------------------------
    engine = db.make_optimizer("orca")
    plan = engine.optimize(db.bind(sql))
    print("=== Memo groups and request tables (cf. Figure 13) ===")
    print(engine.memo.describe())

    # -- 2. the winning plan (Figure 14's Plan 4 shape) ---------------------
    print("\n=== Best plan ===")
    print(plan.explain())
    print(f"\nplan size: {plan.size_bytes()} bytes "
          f"({plan.node_count()} nodes); dispatched with metadata annex: "
          f"{plan.dispatched_size_bytes()} bytes")

    # -- 3. the Figure 12 validity rule in action ---------------------------
    print("\n=== Figure 12: invalid Motion placement is rejected ===")
    r = db.catalog.table("r")
    selector = next(
        op for op in plan.walk() if isinstance(op, PartitionSelector)
    )
    bad = Plan(
        # Motion ABOVE the producer separates it from the consumer.
        _bad_plan(selector.spec, r)
    )
    try:
        bad.validate()
    except InvalidPlanError as exc:
        print(f"rejected as expected: {exc}")

    # -- 4. Section 3.2 lowering -------------------------------------------
    print("\n=== Lowered form (Table 1 built-ins, Figure 15) ===")
    static_sql = "SELECT count(*) FROM r WHERE pk < 300"
    lowered = lower_partition_selectors(db.plan(static_sql))
    print(lowered.explain())
    native_result = db.sql(static_sql)
    lowered_result = db.execute_plan(lowered)
    print(f"\nnative:  {native_result.rows} "
          f"({native_result.partitions_scanned('r')} parts)")
    print(f"lowered: {lowered_result.rows} "
          f"({lowered_result.partitions_scanned('r')} parts)")


def _bad_plan(spec, table):
    from repro.expr.ast import ColumnRef
    from repro.physical.ops import HashJoin, Scan

    producer = BroadcastMotion(PartitionSelector(spec, Scan(table, "x")))
    consumer = DynamicScan(spec.table, "r", spec.part_scan_id)
    return HashJoin(
        "inner",
        producer,
        consumer,
        [ColumnRef("pk", "x")],
        [ColumnRef("pk", "r")],
    )


if __name__ == "__main__":
    main()
