#!/usr/bin/env python3
"""Multi-client scripted-CLI equivalence check.

Drives the same scripted shell session from N concurrent network
clients against one admission-controlled :class:`repro.serving.NetServer`
and diffs every transcript against a serial single-session replay of
the identical script.  Concurrency — shared worker pool, admission
queueing, fair-share scheduling, graceful degradation — must be
*invisible* in the transcripts: same rows, same partitions-scanned
lines, byte for byte.

Usage::

    PYTHONPATH=src python tools/concurrent_cli_diff.py [--clients N]

Exits non-zero (printing a unified diff) on the first transcript that
deviates from the serial reference.
"""

from __future__ import annotations

import argparse
import difflib
import socket
import sys
import threading

SCRIPT = [
    "SELECT count(*) FROM orders "
    "WHERE date BETWEEN '10-01-2013' AND '12-31-2013';",
    "SELECT avg(amount) FROM orders WHERE date = '05-15-2013';",
    "SELECT count(*), sum(orders_fk.amount) FROM orders_fk, date_dim "
    "WHERE orders_fk.date_id = date_dim.date_id "
    "AND date_dim.year = 2013;",
    "SELECT count(*) FROM date_dim;",
]


class Client:
    """Tiny framed client over the newline/EOT protocol."""

    def __init__(self, host: str, port: int):
        self._conn = socket.create_connection((host, port), timeout=30)
        self._stream = self._conn.makefile("rwb")

    def rpc(self, line: str) -> str:
        from repro.serving import EOT

        self._stream.write(line.encode() + b"\n")
        self._stream.flush()
        out = []
        while True:
            raw = self._stream.readline()
            if not raw or raw == EOT:
                break
            out.append(raw.decode().rstrip("\n"))
        return "\n".join(out)

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


def _demo_db():
    from repro import Database
    from repro.cli import ReplSession

    db = Database(num_segments=4)
    ReplSession(db).handle_line("\\demo")
    return db


def serial_reference() -> list[str]:
    """The same script through a plain (serverless) shell session."""
    from repro.cli import ReplSession

    repl = ReplSession(_demo_db())
    return [repl.handle_line(line) for line in SCRIPT]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=4)
    args = parser.parse_args(argv)

    from repro.serving import NetServer

    reference = serial_reference()

    db = _demo_db()
    transcripts: dict[int, list[str]] = {}
    failures: list[str] = []
    with NetServer(
        db,
        max_concurrent=4,
        max_queued=64,
        queue_timeout_s=60.0,
        session_max_inflight=2,
    ) as net:
        clients = [Client(net.host, net.port) for _ in range(args.clients)]

        def drive(index: int) -> None:
            try:
                transcripts[index] = [
                    clients[index].rpc(line) for line in SCRIPT
                ]
            except Exception as exc:  # noqa: BLE001 - reported, not raised
                failures.append(f"client {index}: {exc!r}")

        threads = [
            threading.Thread(target=drive, args=(i,))
            for i in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
            if thread.is_alive():
                failures.append("client thread hung")
        for client in clients:
            client.rpc("\\q")
            client.close()
    net.server.close()

    for line in failures:
        print(f"FAIL: {line}")
    status = 1 if failures else 0
    for index in sorted(transcripts):
        if transcripts[index] == reference:
            print(f"client {index}: transcript matches serial reference")
            continue
        status = 1
        print(f"client {index}: transcript DIFFERS from serial reference")
        diff = difflib.unified_diff(
            "\n".join(reference).splitlines(),
            "\n".join(transcripts[index]).splitlines(),
            fromfile="serial",
            tofile=f"client-{index}",
            lineterm="",
        )
        for row in diff:
            print(row)
    if len(transcripts) != args.clients:
        status = 1
        print(f"FAIL: {len(transcripts)}/{args.clients} transcripts collected")
    if status == 0:
        print(
            f"concurrent CLI diff: OK — {args.clients} concurrent clients, "
            f"{len(SCRIPT)} statements each, transcripts identical to serial"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
