#!/usr/bin/env python3
"""End-to-end scrape-endpoint smoke over the real ``--serve`` process.

Boots ``python -m repro --serve 0 --metrics-port 0`` as a subprocess,
loads the demo dataset through the network REPL protocol, drives
concurrent query clients, and scrapes ``/metrics``, ``/healthz`` and
``/activity`` while they run.  Asserts the exposition bodies are
well-formed: every Prometheus family has exactly one HELP/TYPE pair,
histogram buckets are cumulative and end at ``+Inf``, ``/healthz``
reports every segment up, and ``/activity`` accounts for every
statement the clients ran.

Usage::

    PYTHONPATH=src python tools/scrape_smoke.py [--clients N]

Exits non-zero listing every failed expectation.
"""

from __future__ import annotations

import argparse
import json
import re
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

QUERIES = [
    "SELECT count(*) FROM orders "
    "WHERE date BETWEEN '10-01-2013' AND '12-31-2013';",
    "SELECT avg(amount) FROM orders WHERE date = '05-15-2013';",
    "SELECT count(*) FROM date_dim;",
]

#: families the consolidated exporter must serve once queries have run
REQUIRED_FAMILIES = [
    "repro_query_calls_total",
    "repro_cache_hits_total",
    "repro_serving_admitted_total",
    "repro_live_queries",
    "repro_live_queries_completed_total",
    "repro_live_query_seconds",
    "repro_live_sample",
]


class Client:
    """Tiny framed client over the newline/EOT protocol."""

    EOT = b"\x04\n"

    def __init__(self, host: str, port: int):
        self._conn = socket.create_connection((host, port), timeout=30)
        self._stream = self._conn.makefile("rwb")

    def rpc(self, line: str) -> str:
        self._stream.write(line.encode() + b"\n")
        self._stream.flush()
        out = []
        while True:
            raw = self._stream.readline()
            if not raw or raw == self.EOT:
                break
            out.append(raw.decode().rstrip("\n"))
        return "\n".join(out)

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


def start_server() -> tuple[subprocess.Popen, tuple[str, int], str]:
    """Spawn ``--serve`` and parse the two announced addresses."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve", "0", "--metrics-port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    query_address: tuple[str, int] | None = None
    scrape_address: str | None = None
    deadline = time.monotonic() + 30.0
    lines: list[str] = []

    def pump():
        for line in process.stdout:
            lines.append(line.rstrip("\n"))

    reader = threading.Thread(target=pump, daemon=True)
    reader.start()
    while time.monotonic() < deadline:
        for line in list(lines):
            match = re.search(r"repro serving on (\S+):(\d+)", line)
            if match:
                query_address = (match.group(1), int(match.group(2)))
            match = re.search(r"scrape endpoints on (http://\S+)", line)
            if match:
                scrape_address = match.group(1)
        if query_address and scrape_address:
            return process, query_address, scrape_address
        if process.poll() is not None:
            break
        time.sleep(0.05)
    process.kill()
    raise RuntimeError(f"server never announced its ports: {lines}")


def get(base: str, path: str) -> tuple[int, str, str]:
    try:
        with urllib.request.urlopen(base + path, timeout=10.0) as response:
            return (
                response.status,
                response.headers["Content-Type"],
                response.read().decode(),
            )
    except urllib.error.HTTPError as error:
        return error.code, error.headers["Content-Type"], error.read().decode()


def check_metrics(body: str, failures: list[str]) -> None:
    families = dict(re.findall(r"# TYPE (\S+) (\S+)", body))
    for name in REQUIRED_FAMILIES:
        if name not in families:
            failures.append(f"/metrics missing family {name}")
    for name in families:
        if body.count(f"# HELP {name} ") != 1:
            failures.append(f"/metrics family {name}: HELP count != 1")
        if body.count(f"# TYPE {name} ") != 1:
            failures.append(f"/metrics family {name}: TYPE count != 1")
    for name, kind in families.items():
        if kind != "histogram":
            continue
        buckets = [
            (le, float(value))
            for le, value in re.findall(
                rf'{name}_bucket\{{le="([^"]+)"\}} (\S+)', body
            )
        ]
        if not buckets or buckets[-1][0] != "+Inf":
            failures.append(f"/metrics histogram {name}: no +Inf bucket")
            continue
        values = [value for _, value in buckets]
        if values != sorted(values):
            failures.append(f"/metrics histogram {name}: non-monotonic")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=3)
    args = parser.parse_args(argv)

    failures: list[str] = []
    process, (host, port), scrape = start_server()
    try:
        loader = Client(host, port)
        loader.rpc("\\demo")

        clients = [Client(host, port) for _ in range(args.clients)]
        results: dict[int, list[str]] = {}

        def drive(index: int) -> None:
            results[index] = [clients[index].rpc(q) for q in QUERIES]

        threads = [
            threading.Thread(target=drive, args=(i,))
            for i in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        # scrape while the clients are in flight
        mid_status, _, _ = get(scrape, "/metrics")
        if mid_status != 200:
            failures.append(f"mid-flight /metrics returned {mid_status}")
        for thread in threads:
            thread.join(timeout=120.0)
            if thread.is_alive():
                failures.append("client thread hung")
        for index, answers in sorted(results.items()):
            for query, answer in zip(QUERIES, answers):
                if "rows)" not in answer and "row)" not in answer:
                    failures.append(
                        f"client {index}: no rows for {query!r}: {answer!r}"
                    )

        status, content_type, body = get(scrape, "/metrics")
        if status != 200:
            failures.append(f"/metrics returned {status}")
        if not content_type.startswith("text/plain; version=0.0.4"):
            failures.append(f"/metrics content-type {content_type!r}")
        check_metrics(body, failures)

        status, _, body = get(scrape, "/healthz")
        health = json.loads(body)
        if status != 200 or health["status"] != "ok":
            failures.append(f"/healthz {status}: {health}")
        if health["primaries"] != ["up"] * 4:
            failures.append(f"/healthz primaries: {health['primaries']}")

        status, _, body = get(scrape, "/activity")
        activity = json.loads(body)
        expected = args.clients * len(QUERIES)
        if status != 200:
            failures.append(f"/activity returned {status}")
        if activity["completed"] < expected:
            failures.append(
                f"/activity completed {activity['completed']} < {expected}"
            )
        if activity["failed"] != 0:
            failures.append(f"/activity failed = {activity['failed']}")

        status, _, _ = get(scrape, "/nope")
        if status != 404:
            failures.append(f"unknown path returned {status}, wanted 404")

        for client in clients:
            client.rpc("\\q")
            client.close()
        loader.rpc("\\q")
        loader.close()
    finally:
        process.terminate()
        try:
            process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            process.kill()

    for line in failures:
        print(f"FAIL: {line}")
    if failures:
        return 1
    print(
        f"scrape smoke: OK — {args.clients} concurrent clients, "
        f"{args.clients * len(QUERIES)} statements, "
        "/metrics /healthz /activity all well-formed"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
