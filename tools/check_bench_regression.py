#!/usr/bin/env python3
"""Benchmark regression gate: compare two ``benchmarks/results`` dirs.

Usage::

    python tools/check_bench_regression.py BASELINE_DIR CURRENT_DIR

Two classes of comparison, mirroring what the simulator can promise:

* **Counters gate hard.**  Partition-elimination effectiveness (fig16),
  plan sizes (fig18a/b/c), cache hit rates (fig20) and overload-shedding
  counters (fig21) are fully deterministic — same code, same numbers.  Any difference from the baseline exits non-zero: either a
  genuine optimizer regression or an intentional change that must ship
  with refreshed baselines (``benchmarks/baselines/``).
* **Wall clocks report only.**  Timings (fig17/fig19 ``*seconds*`` /
  ``*elapsed*`` leaves) are noise on shared CI runners, so slowdowns past
  the warn threshold (default 25%) print a ``WARN`` line but never fail
  the gate.

A gated file missing from CURRENT_DIR fails (the benchmark stopped
emitting its counters); one missing from BASELINE_DIR is only a warning
(first run on a branch, or a newly added benchmark).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys

#: benchmark JSON -> top-level keys whose values must match exactly
COUNTER_GATES: dict[str, list[str]] = {
    "fig16_partitions_scanned.json": ["tables"],
    "fig18a_static_plan_size.json": [
        "fractions",
        "planner_bytes",
        "orca_bytes",
    ],
    "fig18b_join_plan_size.json": [
        "part_counts",
        "planner_bytes",
        "orca_bytes",
        "orca_dispatched_bytes",
    ],
    "fig18c_dml_plan_size.json": [
        "part_counts",
        "planner_bytes",
        "orca_bytes",
    ],
    # cache hit-rate counters are deterministic (fixed workload schedule);
    # the speedup wall clocks in the same file stay report-only
    "fig20_cache_speedup.json": ["workload"],
    # admission control under a synchronized burst: admitted/shed/typed
    # counts are exact; the throughput wall clocks stay report-only
    "fig21_concurrent_throughput.json": ["overload"],
    # fig22 (recovery time vs checkpoint size) is deliberately absent:
    # every interesting leaf is a wall clock (*_seconds) or scales with
    # the size matrix, so the whole file stays report-only via the
    # timing scan below
    # batch-vs-row counters (result rows, partitions/rows scanned, motion
    # traffic at each batch width) are deterministic and must agree
    # between widths; the throughput wall clocks stay report-only
    "fig23_batch_throughput.json": [
        "counters",
        "batch_sizes",
        "fact_rows",
    ],
}

#: substrings identifying wall-clock leaves (report-only)
TIMING_MARKERS = ("seconds", "elapsed", "_s", "latency")


def _load(path: pathlib.Path):
    with path.open() as handle:
        return json.load(handle)


def _timing_leaves(payload, prefix: str = "") -> dict[str, float]:
    """Flatten every numeric leaf whose key smells like a wall clock."""
    leaves: dict[str, float] = {}
    if isinstance(payload, dict):
        items = payload.items()
    elif isinstance(payload, list):
        items = ((f"[{i}]", v) for i, v in enumerate(payload))
    else:
        return leaves
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, (dict, list)):
            leaves.update(_timing_leaves(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            name = str(key).lower()
            if any(marker in name for marker in TIMING_MARKERS):
                leaves[path] = float(value)
    return leaves


def _numeric_leaves(payload, prefix: str = "") -> dict[str, float]:
    """Flatten every numeric leaf (dotted path -> value)."""
    leaves: dict[str, float] = {}
    if isinstance(payload, dict):
        items = payload.items()
    elif isinstance(payload, list):
        items = ((f"[{i}]", v) for i, v in enumerate(payload))
    else:
        return leaves
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, (dict, list)):
            leaves.update(_numeric_leaves(value, path))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            leaves[path] = float(value)
    return leaves


def _summary_rows(
    baseline_dir: pathlib.Path, current_dir: pathlib.Path
) -> list[dict]:
    """Per-metric delta rows for the CI step summary: every gated counter
    leaf and every wall-clock leaf shared by both result dirs."""
    rows: list[dict] = []
    for current_path in sorted(current_dir.glob("*.json")):
        baseline_path = baseline_dir / current_path.name
        if not baseline_path.exists():
            continue
        current = _numeric_leaves(_load(current_path))
        baseline = _numeric_leaves(_load(baseline_path))
        gated_keys = COUNTER_GATES.get(current_path.name, [])
        for leaf, current_value in sorted(current.items()):
            baseline_value = baseline.get(leaf)
            if baseline_value is None:
                continue
            top = leaf.split(".", 1)[0]
            last = leaf.rsplit(".", 1)[-1].lower()
            if top in gated_keys:
                kind = "gated"
            elif any(marker in last for marker in TIMING_MARKERS):
                kind = "report-only"
            else:
                continue
            rows.append(
                {
                    "file": current_path.name,
                    "metric": leaf,
                    "kind": kind,
                    "baseline": baseline_value,
                    "current": current_value,
                }
            )
    return rows


def format_step_summary(
    rows: list[dict], failures: list[str], warnings: list[str]
) -> str:
    """The markdown delta table appended to ``$GITHUB_STEP_SUMMARY``."""

    def _num(value: float) -> str:
        return f"{value:g}"

    def _delta(baseline: float, current: float) -> str:
        if current == baseline:
            return "="
        if baseline == 0:
            return "n/a"
        pct = (current / baseline - 1.0) * 100
        return f"{pct:+.1f}%"

    if failures:
        verdict = f"**FAIL** — {len(failures)} counter regression(s)"
    else:
        verdict = "**OK**"
    lines = [
        "## Benchmark regression gate",
        "",
        f"{verdict}, {len(warnings)} warning(s)",
        "",
    ]
    if rows:
        lines += [
            "| file | metric | kind | baseline | current | delta |",
            "| --- | --- | --- | ---: | ---: | ---: |",
        ]
        for row in rows:
            lines.append(
                f"| {row['file']} | `{row['metric']}` | {row['kind']} "
                f"| {_num(row['baseline'])} | {_num(row['current'])} "
                f"| {_delta(row['baseline'], row['current'])} |"
            )
    else:
        lines.append("_no shared metrics to compare_")
    return "\n".join(lines) + "\n"


def _write_step_summary(
    rows: list[dict], failures: list[str], warnings: list[str]
) -> None:
    target = os.environ.get("GITHUB_STEP_SUMMARY")
    if not target:
        return
    with open(target, "a", encoding="utf-8") as handle:
        handle.write(format_step_summary(rows, failures, warnings))


def compare(
    baseline_dir: pathlib.Path,
    current_dir: pathlib.Path,
    warn_pct: float = 25.0,
) -> int:
    failures: list[str] = []
    warnings: list[str] = []
    checked = 0

    for name, keys in sorted(COUNTER_GATES.items()):
        current_path = current_dir / name
        baseline_path = baseline_dir / name
        if not baseline_path.exists():
            warnings.append(f"{name}: no baseline to compare against")
            continue
        if not current_path.exists():
            # the baseline proves this benchmark used to emit counters
            failures.append(f"{name}: missing from current results")
            continue
        current = _load(current_path)
        baseline = _load(baseline_path)
        for key in keys:
            if key not in current:
                failures.append(f"{name}: counter {key!r} no longer emitted")
                continue
            if key not in baseline:
                warnings.append(f"{name}: baseline lacks counter {key!r}")
                continue
            checked += 1
            if current[key] != baseline[key]:
                failures.append(
                    f"{name}: counter {key!r} changed\n"
                    f"  baseline: {json.dumps(baseline[key], sort_keys=True)}\n"
                    f"  current:  {json.dumps(current[key], sort_keys=True)}"
                )

    # Wall clocks: every shared JSON, report-only.
    for current_path in sorted(current_dir.glob("*.json")):
        baseline_path = baseline_dir / current_path.name
        if not baseline_path.exists():
            continue
        current_times = _timing_leaves(_load(current_path))
        baseline_times = _timing_leaves(_load(baseline_path))
        for leaf, current_value in sorted(current_times.items()):
            baseline_value = baseline_times.get(leaf)
            if not baseline_value or baseline_value <= 0:
                continue
            slowdown_pct = (current_value / baseline_value - 1.0) * 100
            if slowdown_pct > warn_pct:
                warnings.append(
                    f"{current_path.name}: {leaf} slowed "
                    f"{slowdown_pct:.0f}% ({baseline_value:.4f} -> "
                    f"{current_value:.4f}) [report-only]"
                )

    _write_step_summary(
        _summary_rows(baseline_dir, current_dir), failures, warnings
    )

    for warning in warnings:
        print(f"WARN  {warning}")
    for failure in failures:
        print(f"FAIL  {failure}")
    if failures:
        print(
            f"\nbench gate: {len(failures)} counter regression(s) against "
            f"{baseline_dir}"
        )
        return 1
    print(
        f"bench gate: OK — {checked} counter(s) match baseline, "
        f"{len(warnings)} warning(s)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("current", type=pathlib.Path)
    parser.add_argument(
        "--warn-slowdown-pct",
        type=float,
        default=25.0,
        help="report-only wall-clock slowdown threshold (default 25)",
    )
    args = parser.parse_args(argv)
    if not args.baseline.is_dir():
        print(f"FAIL  baseline dir {args.baseline} does not exist")
        return 1
    if not args.current.is_dir():
        print(f"FAIL  current results dir {args.current} does not exist")
        return 1
    return compare(args.baseline, args.current, args.warn_slowdown_pct)


if __name__ == "__main__":
    sys.exit(main())
