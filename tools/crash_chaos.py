#!/usr/bin/env python3
"""Crash-recovery chaos over the real ``--serve`` process.

Boots ``python -m repro --serve 0 --data-dir DIR`` as a subprocess,
drives concurrent DML (multi-row INSERTs and DELETEs against
``date_dim``) and read queries through the network REPL protocol, then
SIGKILLs the server at a random moment — a random WAL offset — and
restarts it with the same data directory.  After each kill/restart
cycle it asserts the durability contract:

* **atomicity** — every multi-row INSERT survived whole or not at all;
* **prefix** — the surviving statements form a contiguous prefix of the
  issue order (the WAL serializes commits);
* **no lost acks** — every statement the client saw acknowledged is in
  that prefix (``wal sync`` fsyncs before replying);
* **byte-identical state** — an aggregate query battery on the
  recovered server matches, byte for byte, an undisturbed reference
  server that replayed exactly the surviving statements.

Usage::

    PYTHONPATH=src python tools/crash_chaos.py [--cycles N] [--seed S]

Exits non-zero listing every failed expectation.
"""

from __future__ import annotations

import argparse
import random
import re
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time

#: single-table aggregate battery: deterministic under serial execution,
#: independent of optimizer statistics (the recovered server has no
#: ANALYZE state), so recovered and reference answers must match exactly
BATTERY = [
    "SELECT count(*), sum(amount), avg(amount) FROM orders "
    "WHERE date BETWEEN '03-01-2013' AND '09-30-2013';",
    "SELECT count(*) FROM date_dim;",
    "SELECT count(*), min(date_id), max(date_id) FROM date_dim "
    "WHERE year >= 10000;",
    "SELECT count(*), min(date_id) FROM date_dim WHERE year < 9000;",
    "SELECT count(*) FROM orders_fk WHERE date_id < 100;",
]

#: inserted markers live far above the demo's date_id range (0..729)
ID_BASE = 100_000
#: per-cycle cap so the reference replay stays fast
MAX_STATEMENTS = 400


class Client:
    """Tiny framed client over the newline/EOT protocol."""

    EOT = b"\x04\n"

    def __init__(self, host: str, port: int):
        self._conn = socket.create_connection((host, port), timeout=30)
        self._stream = self._conn.makefile("rwb")

    def rpc(self, line: str) -> str:
        self._stream.write(line.encode() + b"\n")
        self._stream.flush()
        out = []
        while True:
            raw = self._stream.readline()
            if not raw or raw == self.EOT:
                break
            out.append(raw.decode().rstrip("\n"))
        return "\n".join(out)

    def close(self) -> None:
        try:
            self._conn.close()
        except OSError:
            pass


def start_server(extra: list[str]) -> tuple[subprocess.Popen, str, int]:
    """Spawn ``--serve`` with ``extra`` args and parse its address."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "--serve", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    lines: list[str] = []

    def pump():
        for line in process.stdout:
            lines.append(line.rstrip("\n"))

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        for line in list(lines):
            match = re.search(r"repro serving on (\S+):(\d+)", line)
            if match:
                return process, match.group(1), int(match.group(2))
        if process.poll() is not None:
            break
        time.sleep(0.05)
    process.kill()
    raise RuntimeError(f"server never announced its port: {lines}")


def stop_server(process: subprocess.Popen) -> None:
    process.terminate()
    try:
        process.wait(timeout=10.0)
    except subprocess.TimeoutExpired:
        process.kill()


class Statement:
    """One DML statement with its survival probe."""

    def __init__(self, sql: str, kind: str, marker: int):
        self.sql = sql
        self.kind = kind
        self.marker = marker


def make_statement(rng: random.Random, counter: int) -> Statement:
    if counter % 4 == 3:
        # delete one base demo row; counter // 4 keeps targets unique
        # across cycles and inside date_dim's base range (0..729)
        target = counter // 4
        return Statement(
            f"DELETE FROM date_dim WHERE date_id = {target} "
            "AND year < 9000;",
            "delete",
            target,
        )
    base = ID_BASE + counter * 3
    rows = ", ".join(
        f"({base + offset}, {ID_BASE + counter}, {offset})"
        for offset in range(3)
    )
    return Statement(
        f"INSERT INTO date_dim VALUES {rows};", "insert", ID_BASE + counter
    )


def count_rows(client: Client, sql: str) -> int:
    """Run one ``SELECT count(*) ...`` and parse the value."""
    response = client.rpc(sql)
    lines = response.splitlines()
    if len(lines) < 2:
        raise RuntimeError(f"unparseable count response: {response!r}")
    return int(lines[1].split("|")[0].strip())


def probe_applied(
    client: Client, statement: Statement, failures: list[str]
) -> bool:
    """Did ``statement`` survive the crash?  Also checks atomicity."""
    if statement.kind == "insert":
        survived = count_rows(
            client,
            f"SELECT count(*) FROM date_dim WHERE year = {statement.marker};",
        )
        if survived not in (0, 3):
            failures.append(
                f"atomicity: INSERT marker {statement.marker} survived "
                f"{survived}/3 rows"
            )
        return survived == 3
    remaining = count_rows(
        client,
        f"SELECT count(*) FROM date_dim WHERE date_id = {statement.marker} "
        "AND year < 9000;",
    )
    return remaining == 0


def chaos_phase(host: str, port: int, rng: random.Random, counter_start: int):
    """Fire DML + queries at the server until the caller kills it;
    returns (sent, acked, stop event, threads)."""
    sent: list[Statement] = []
    acked: list[Statement] = []
    stop = threading.Event()

    def dml():
        try:
            client = Client(host, port)
            counter = counter_start
            while not stop.is_set() and len(sent) < MAX_STATEMENTS:
                statement = make_statement(rng, counter)
                counter += 1
                sent.append(statement)
                response = client.rpc(statement.sql)
                if not response:  # socket died mid-reply: not acked
                    break
                if response.startswith("ERROR"):
                    raise RuntimeError(
                        f"DML failed before the kill: {response}"
                    )
                acked.append(statement)
        except OSError:
            pass

    def reads():
        try:
            client = Client(host, port)
            while not stop.is_set():
                client.rpc(rng.choice(BATTERY))
        except OSError:
            pass

    threads = [
        threading.Thread(target=dml, daemon=True),
        threading.Thread(target=reads, daemon=True),
    ]
    for thread in threads:
        thread.start()
    time.sleep(rng.uniform(0.05, 0.5))
    return sent, acked, stop, threads


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--cycles", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2014)
    args = parser.parse_args(argv)

    rng = random.Random(args.seed)
    failures: list[str] = []
    data_dir = tempfile.mkdtemp(prefix="repro-crash-chaos-")
    applied_history: list[str] = []
    counter = 0
    process = None
    try:
        process, host, port = start_server(["--data-dir", data_dir])
        setup = Client(host, port)
        setup.rpc("\\demo")
        setup.rpc("\\checkpoint")  # demo load is the durable baseline
        setup.close()

        for cycle in range(args.cycles):
            sent, acked, stop, threads = chaos_phase(
                host, port, rng, counter
            )
            process.kill()  # SIGKILL: no flush, no goodbye
            process.wait()
            stop.set()
            for thread in threads:
                thread.join(timeout=10.0)
            counter += len(sent)

            process, host, port = start_server(["--data-dir", data_dir])
            client = Client(host, port)
            flags = [
                probe_applied(client, statement, failures)
                for statement in sent
            ]
            survived = sum(flags)
            if flags[survived:].count(True):
                failures.append(
                    f"cycle {cycle}: surviving statements are not a "
                    f"prefix: {flags}"
                )
            lost = [
                statement.marker
                for statement, flag in zip(sent, flags)
                if statement in acked and not flag
            ]
            if lost:
                failures.append(
                    f"cycle {cycle}: acknowledged statements lost: {lost}"
                )
            applied_history.extend(
                statement.sql
                for statement, flag in zip(sent, flags)
                if flag
            )
            recovered_answers = [client.rpc(sql) for sql in BATTERY]

            reference_proc, ref_host, ref_port = start_server([])
            reference = Client(ref_host, ref_port)
            reference.rpc("\\demo")
            for sql in applied_history:
                reference.rpc(sql)
            reference_answers = [reference.rpc(sql) for sql in BATTERY]
            reference.close()
            stop_server(reference_proc)

            for sql, got, want in zip(
                BATTERY, recovered_answers, reference_answers
            ):
                if got != want:
                    failures.append(
                        f"cycle {cycle}: recovered answer diverged for "
                        f"{sql!r}:\n  recovered: {got!r}\n  "
                        f"reference: {want!r}"
                    )
            print(
                f"cycle {cycle}: killed after {len(sent)} statements "
                f"({len(acked)} acked), {survived} survived, "
                f"battery {'ok' if not failures else 'FAILED'}",
                flush=True,
            )
            if rng.random() < 0.5:
                client.rpc("\\checkpoint")  # next cycle recovers a mix
            client.close()
    finally:
        if process is not None:
            stop_server(process)
        shutil.rmtree(data_dir, ignore_errors=True)

    for line in failures:
        print(f"FAIL: {line}")
    if failures:
        return 1
    print(
        f"crash chaos: OK — {args.cycles} SIGKILL/restart cycles, "
        f"{counter} statements issued, recovered state byte-identical "
        "to the undisturbed reference"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
